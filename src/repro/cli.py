"""Command-line interface: ``repro-tpi`` / ``python -m repro``.

Subcommands:

* ``stats <bench|name>`` — circuit statistics and baseline coverage;
* ``insert <bench|name>`` — plan test points and report the placement;
* ``coverage <bench|name>`` — plan, insert, fault simulate, report;
* ``report <bench|name|trace.jsonl>`` — testability profile of a
  circuit, or a human-readable summary of a recorded trace;
* ``experiments`` — run the reconstructed evaluation suite (T1–T4, F1–F4);
* ``list`` — list built-in benchmark circuits.

A circuit argument is either the name of a built-in benchmark (see
``list``) or a path to an ISCAS-85 ``.bench`` file.

Observability: ``--trace-out FILE`` records a structured JSONL trace of
the run (spans, counters, run metadata — see :mod:`repro.obs`), and
``--metrics`` prints the metrics snapshot after the command finishes.
``repro-tpi report run.jsonl`` renders a recorded trace.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path
from typing import Iterator, List, Optional

from . import obs
from .analysis import experiments as exps
from .circuit.bench_io import parse_bench_file
from .circuit.verilog_io import parse_verilog_file
from .circuit.library import BENCHMARKS, benchmark, benchmark_names
from .circuit.netlist import Circuit
from .core.evaluate import evaluate_solution
from .core.prepare import prepare_for_tpi
from .core.greedy import solve_greedy
from .core.heuristic import solve_dp_heuristic
from .core.problem import TPIProblem, TPISolution
from .sim.fault_sim import FaultSimulator
from .sim.faults import collapse_faults
from .sim.patterns import UniformRandomSource

__all__ = ["main"]


def _load_circuit(spec: str) -> Circuit:
    """Resolve a circuit spec (built-in name or netlist file).

    All loading/parsing failures funnel into one ``SystemExit`` with a
    readable message, so every subcommand shares the same error surface.
    """
    if spec in BENCHMARKS:
        return benchmark(spec)
    path = Path(spec)
    if not path.exists():
        raise SystemExit(
            f"unknown circuit {spec!r}: not a built-in benchmark and not a "
            f"file (built-ins: {', '.join(benchmark_names())})"
        )
    try:
        if path.suffix in (".v", ".sv"):
            return parse_verilog_file(path)
        return parse_bench_file(path)
    except Exception as exc:
        raise SystemExit(f"failed to parse {spec!r}: {exc}") from exc


def _load_prepared(args: argparse.Namespace) -> Circuit:
    """Load + TPI-prepare a circuit under the ``prepare`` pipeline span."""
    with obs.span("prepare", circuit=args.circuit):
        return prepare_for_tpi(_load_circuit(args.circuit))


def _solve(problem: TPIProblem, args: argparse.Namespace) -> TPISolution:
    """Run the selected solver under the ``solve`` pipeline span."""
    with obs.span(
        "solve", solver=args.solver, circuit=problem.circuit.name
    ) as sp:
        if args.solver == "greedy":
            solution = solve_greedy(problem)
        else:
            solution = solve_dp_heuristic(problem)
        sp.set(
            cost=solution.cost,
            points=len(solution.points),
            feasible=solution.feasible,
        )
    return solution


def _cmd_list(_args: argparse.Namespace) -> int:
    for name in benchmark_names():
        circuit = benchmark(name)
        stats = circuit.stats()
        print(
            f"{name:14s} inputs={stats['inputs']:4d} gates={stats['gates']:5d} "
            f"depth={stats['depth']:3d} outputs={stats['outputs']:3d}"
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with obs.span("prepare", circuit=args.circuit):
        circuit = _load_circuit(args.circuit)
        stats = circuit.stats()
        collapsed = collapse_faults(circuit)
    for key, value in stats.items():
        print(f"{key:10s} {value}")
    print(f"{'faults':10s} {collapsed.size()} (collapsed)")
    stim = UniformRandomSource(seed=args.seed).generate(
        circuit.inputs, args.patterns
    )
    res = FaultSimulator(circuit).run(stim, args.patterns)
    print(f"{'coverage':10s} {100 * res.coverage():.2f}% @ {args.patterns} patterns")
    return 0


def _make_problem(circuit: Circuit, args: argparse.Namespace) -> TPIProblem:
    return TPIProblem.from_test_length(
        circuit, n_patterns=args.patterns, escape_budget=args.escape
    )


def _cmd_insert(args: argparse.Namespace) -> int:
    circuit = _load_prepared(args)
    problem = _make_problem(circuit, args)
    solution = _solve(problem, args)
    print(f"threshold θ = {problem.threshold:.6f}")
    print(solution.describe())
    return 0 if solution.feasible else 1


def _cmd_coverage(args: argparse.Namespace) -> int:
    circuit = _load_prepared(args)
    problem = _make_problem(circuit, args)
    solution = _solve(problem, args)
    report = evaluate_solution(problem, solution, args.patterns)
    print(f"circuit        {report.circuit_name}")
    print(f"faults         {report.n_faults}")
    print(f"test points    {report.n_control} CP + {report.n_observation} OP")
    print(f"coverage       {100 * report.baseline_coverage:.2f}% -> "
          f"{100 * report.modified_coverage:.2f}%  (+{100 * report.coverage_gain:.2f})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    spec = args.circuit
    if Path(spec).suffix == ".jsonl":
        # A recorded trace, not a circuit: render its summary.
        if not Path(spec).exists():
            raise SystemExit(f"no such trace file: {spec!r}")
        print(obs.render_trace(spec))
        return 0

    from .analysis import testability_report

    circuit = _load_circuit(spec)
    report = testability_report(
        circuit, n_patterns=args.patterns, escape_budget=args.escape
    )
    print(report.render())
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    runners = {
        "t1": lambda: exps.run_t1_circuit_characteristics(),
        "t2": lambda: exps.run_t2_dp_optimality(),
        "t3": lambda: exps.run_t3_tree_solver_comparison(),
        "t4": lambda: exps.run_t4_coverage_improvement()[0],
        "f1": lambda: exps.run_f1_points_curve(),
        "f2": lambda: exps.run_f2_runtime_scaling(),
        "f3": lambda: exps.run_f3_testlength_curves(),
        "f4": lambda: exps.run_f4_quantization_ablation(),
        "e1": lambda: exps.run_e1_misr_aliasing(),
        "e2": lambda: exps.run_e2_margin_ablation(),
        "e3": lambda: exps.run_e3_strategy_comparison(),
        "e4": lambda: exps.run_e4_multiphase(),
        "e5": lambda: exps.run_e5_weighted_random(),
    }
    selected = args.only or list(runners)
    for key in selected:
        if key not in runners:
            raise SystemExit(f"unknown experiment {key!r} (choose from {list(runners)})")
        with obs.span(f"experiment.{key}"):
            rendered = runners[key]().render()
        print(rendered)
        print()
    return 0


# ---------------------------------------------------------------------------
# Observability plumbing
# ---------------------------------------------------------------------------
def _run_metadata(args: argparse.Namespace) -> dict:
    meta = {"command": args.command, "argv": sys.argv[1:]}
    for key in ("circuit", "seed", "patterns", "escape", "solver", "only"):
        value = getattr(args, key, None)
        if value is not None:
            meta[key] = value
    return obs.run_metadata(**meta)


@contextlib.contextmanager
def _observability(args: argparse.Namespace) -> Iterator[None]:
    """Install a recorder for ``--trace-out`` / ``--metrics`` runs."""
    trace_out = getattr(args, "trace_out", None)
    want_metrics = getattr(args, "metrics", False)
    if trace_out is None and not want_metrics:
        yield
        return
    recorder = obs.RunRecorder(trace_out, metadata=_run_metadata(args))
    previous = obs.set_recorder(recorder)
    try:
        yield
    finally:
        obs.set_recorder(previous)
        snapshot = recorder.metrics.snapshot()
        recorder.close()
        if want_metrics:
            print("\n" + obs.render_metrics(snapshot), file=sys.stderr)
        if trace_out is not None:
            print(
                f"trace written to {trace_out} "
                f"({recorder.n_spans} spans)",
                file=sys.stderr,
            )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-tpi",
        description="Dynamic-programming test point insertion (DAC 1987 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list built-in benchmark circuits").set_defaults(
        fn=_cmd_list
    )

    def add_observability(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace-out",
            metavar="FILE",
            help="record a structured JSONL trace of the run",
        )
        p.add_argument(
            "--metrics",
            action="store_true",
            help="print the metrics snapshot after the command",
        )

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("circuit", help="benchmark name, .bench file, or structural .v file")
        p.add_argument("--patterns", type=int, default=4096, help="pattern budget")
        p.add_argument("--escape", type=float, default=0.001, help="escape budget ε")
        p.add_argument("--seed", type=int, default=1, help="pattern source seed")

    p = sub.add_parser("stats", help="circuit statistics and baseline coverage")
    add_common(p)
    add_observability(p)
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser("insert", help="plan test points and print the placement")
    add_common(p)
    add_observability(p)
    p.add_argument("--solver", choices=["dp", "greedy"], default="dp")
    p.set_defaults(fn=_cmd_insert)

    p = sub.add_parser("coverage", help="plan, insert, fault simulate, report")
    add_common(p)
    add_observability(p)
    p.add_argument("--solver", choices=["dp", "greedy"], default="dp")
    p.set_defaults(fn=_cmd_coverage)

    p = sub.add_parser(
        "report",
        help="testability profile of a circuit, or summary of a .jsonl trace",
    )
    add_common(p)
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("experiments", help="run the evaluation suite")
    p.add_argument(
        "--only",
        nargs="*",
        help="subset of experiment ids (t1..t4, f1..f4, e1..e5)",
    )
    add_observability(p)
    p.set_defaults(fn=_cmd_experiments)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    with _observability(args):
        return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
