"""Multiple-input signature register (MISR) response compaction.

A MISR is an LFSR whose stages additionally XOR in one response bit per
cycle; after the last pattern its state — the **signature** — summarizes
the whole response stream.  A faulty circuit whose signature happens to
collide with the golden one **aliases**: the fault is detected at the
outputs but lost in compaction.  For a ``k``-bit MISR driven by a long
effectively-random error stream the aliasing probability approaches
``2^-k`` — measured empirically by experiment E1.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..sim.lfsr import primitive_taps

__all__ = ["MISR", "signature_of_responses"]


class MISR:
    """A ``width``-stage MISR with primitive feedback.

    Parameters
    ----------
    width:
        Number of register stages (signature bits).
    seed:
        Initial state (0 is fine for a MISR, unlike a pattern LFSR).
    """

    def __init__(self, width: int, seed: int = 0) -> None:
        if width < 2:
            raise ValueError("MISR width must be ≥ 2")
        self.width = width
        self._mask = (1 << width) - 1
        self._tap_mask = 0
        for t in primitive_taps(width):
            self._tap_mask |= 1 << (t - 1)
        self.state = seed & self._mask

    def clock(self, data: int) -> int:
        """Shift one cycle, XOR-ing ``data`` (a ``width``-bit slice) in."""
        feedback = (self.state & self._tap_mask).bit_count() & 1
        self.state = (((self.state << 1) | feedback) ^ data) & self._mask
        return self.state

    def reset(self, seed: int = 0) -> None:
        """Return the register to a known state."""
        self.state = seed & self._mask


def signature_of_responses(
    responses: Mapping[str, int],
    output_order: Sequence[str],
    n_patterns: int,
    width: int,
    seed: int = 0,
) -> int:
    """Compact packed per-output response words into one signature.

    ``responses[po]`` holds output ``po``'s value under pattern ``p`` in
    bit ``p``.  Output ``i`` feeds MISR stage ``i mod width`` (the standard
    space-fold when there are more outputs than stages); one MISR cycle is
    clocked per pattern.
    """
    misr = MISR(width, seed=seed)
    for p in range(n_patterns):
        data = 0
        for i, po in enumerate(output_order):
            if (responses[po] >> p) & 1:
                data ^= 1 << (i % width)
        misr.clock(data)
    return misr.state
