"""The complete scan-based BIST architecture: LFSR → CUT → MISR.

Glues the substrates into the self-test loop the paper's setting assumes:
an LFSR feeds pseudo-random patterns to the (test-point-modified) circuit,
a MISR compacts the responses, and a fault is *observed by BIST* only when
its faulty signature differs from the golden one.  The report separates
output-level detection from signature-level detection, exposing aliasing
loss — the quantity experiment E1 sweeps against MISR width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..circuit.netlist import Circuit
from ..sim.fault_sim import FaultSimulator
from ..sim.faults import Fault, collapse_faults
from ..sim.logic_sim import LogicSimulator
from ..sim.patterns import PatternSource, UniformRandomSource
from .misr import signature_of_responses

__all__ = ["BISTArchitecture", "BISTRunReport", "run_bist"]


@dataclass(frozen=True)
class BISTArchitecture:
    """Static configuration of the self-test machinery.

    Attributes
    ----------
    n_patterns:
        Pseudo-random pattern budget.
    misr_width:
        Signature register width in bits.
    source:
        Pattern source (defaults to a seeded uniform source; an
        :class:`~repro.sim.patterns.LFSRSource` gives the authentic
        hardware stimulus).
    misr_seed:
        Initial MISR state.
    """

    n_patterns: int
    misr_width: int = 16
    source: Optional[PatternSource] = None
    misr_seed: int = 0

    def pattern_source(self) -> PatternSource:
        """The configured (or default) stimulus source."""
        return self.source or UniformRandomSource(seed=1)


@dataclass
class BISTRunReport:
    """Outcome of one self-test run over a fault list.

    Attributes
    ----------
    golden_signature:
        Fault-free MISR state after the full pattern budget.
    output_detected:
        Faults whose effect reaches some primary output.
    signature_detected:
        Faults whose faulty signature differs from the golden one.
    aliased:
        Output-detected faults lost to signature collision.
    """

    architecture: BISTArchitecture
    n_faults: int
    golden_signature: int
    output_detected: List[Fault] = field(default_factory=list)
    signature_detected: List[Fault] = field(default_factory=list)
    aliased: List[Fault] = field(default_factory=list)

    @property
    def output_coverage(self) -> float:
        """Coverage measured at the outputs (no compaction loss)."""
        return len(self.output_detected) / self.n_faults if self.n_faults else 1.0

    @property
    def signature_coverage(self) -> float:
        """Coverage after compaction (what the BIST controller sees)."""
        return (
            len(self.signature_detected) / self.n_faults if self.n_faults else 1.0
        )

    @property
    def aliasing_rate(self) -> float:
        """Fraction of output-detected faults lost in the signature."""
        if not self.output_detected:
            return 0.0
        return len(self.aliased) / len(self.output_detected)


def run_bist(
    circuit: Circuit,
    architecture: BISTArchitecture,
    faults: Optional[Sequence[Fault]] = None,
) -> BISTRunReport:
    """Execute the self-test loop and classify every fault.

    Per fault, the per-output difference stream is compacted through the
    MISR; the fault is signature-detected iff its signature differs from
    the golden signature.
    """
    circuit.validate()
    if faults is None:
        faults = collapse_faults(circuit).representatives
    n = architecture.n_patterns
    stimulus = architecture.pattern_source().generate(circuit.inputs, n)
    good_values = LogicSimulator(circuit).run(stimulus, n)
    outputs = circuit.outputs
    golden = signature_of_responses(
        {po: good_values[po] for po in outputs},
        outputs,
        n,
        architecture.misr_width,
        seed=architecture.misr_seed,
    )

    sim = FaultSimulator(circuit)
    report = BISTRunReport(
        architecture=architecture,
        n_faults=len(faults),
        golden_signature=golden,
    )
    for fault in faults:
        diffs = sim.simulate_fault_responses(fault, good_values, n)
        if not any(diffs.values()):
            continue
        report.output_detected.append(fault)
        faulty_responses = {
            po: good_values[po] ^ diffs.get(po, 0) for po in outputs
        }
        signature = signature_of_responses(
            faulty_responses,
            outputs,
            n,
            architecture.misr_width,
            seed=architecture.misr_seed,
        )
        if signature == golden:
            report.aliased.append(fault)
        else:
            report.signature_detected.append(fault)
    return report
