"""Scan-based BIST substrate: signature compaction and the self-test loop."""

from .architecture import BISTArchitecture, BISTRunReport, run_bist
from .misr import MISR, signature_of_responses

__all__ = [
    "MISR",
    "signature_of_responses",
    "BISTArchitecture",
    "BISTRunReport",
    "run_bist",
]
