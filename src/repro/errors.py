"""Structured exception taxonomy for the whole library.

Krishnamurthy's complexity result makes failure a *normal* outcome here:
general TPI is NP-complete, so any non-tree solve may legitimately run out
of time or state space, and long experiment sweeps must survive individual
circuits going wrong.  Every error the library raises on purpose derives
from :class:`ReproError`, so callers (the CLI, the experiment runner, the
solver cascade) can tell principled failures apart from genuine bugs:

* :class:`ParseError` — a netlist file is malformed; carries the source
  file and 1-based line number when known;
* :class:`SolverError` — a solver cannot run on or solve the given
  instance (precondition violations, infeasibility the caller opted to
  treat as an error);
* :class:`BudgetExceededError` — a cooperative solve budget (wall clock,
  DP table cells, PODEM backtracks, simulated patterns) ran out; the
  solver cascade catches exactly this to degrade to a cheaper method;
* :class:`SimulationError` — a simulation request is inconsistent with
  the circuit (foreign faults, empty pattern budget);
* :class:`ExperimentError` — an experiment-harness level failure
  (unknown experiment id, corrupt checkpoint file);
* :class:`DivergenceError` — a self-check caught two execution paths
  disagreeing (compiled kernel vs interpreter, incremental vs full pass,
  a solver's claimed objective vs independent re-evaluation); carries
  the path of the replayable repro bundle written for the mismatch.

Most leaves also derive from the builtin the pre-taxonomy code raised
(``ValueError`` / ``RuntimeError``), so existing ``except`` clauses and
tests keep working.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "CircuitError",
    "ParseError",
    "SolverError",
    "BudgetExceededError",
    "SimulationError",
    "ExperimentError",
    "DivergenceError",
    "ArtifactWriteError",
    "SweepInterrupted",
]


class ReproError(Exception):
    """Base class of every deliberate error raised by this library."""


class CircuitError(ReproError, ValueError):
    """Raised for structurally invalid netlist operations.

    (Historically defined in :mod:`repro.circuit.netlist`, which still
    re-exports it; it lives here so the whole taxonomy shares one root.)
    """


class ParseError(CircuitError):
    """A netlist file could not be parsed.

    Parameters
    ----------
    message:
        What is wrong, without location prefix.
    path:
        Source file name (``None`` when parsing an in-memory string).
    line:
        1-based line number of the offending construct, when known.

    The rendered message is prefixed ``path:line:`` so editors and CI
    logs link straight to the problem.
    """

    def __init__(
        self,
        message: str,
        *,
        path: Optional[str] = None,
        line: Optional[int] = None,
    ) -> None:
        self.path = path
        self.line = line
        if path is not None and line is not None:
            prefix = f"{path}:{line}: "
        elif path is not None:
            prefix = f"{path}: "
        elif line is not None:
            prefix = f"line {line}: "
        else:
            prefix = ""
        super().__init__(prefix + message)


class SolverError(ReproError, ValueError):
    """A solver cannot run on (or failed on) the given instance."""


class BudgetExceededError(ReproError, RuntimeError):
    """A cooperative solve budget ran out.

    Attributes
    ----------
    resource:
        Which budget dimension was exhausted (``"wall_clock"``,
        ``"dp_cells"``, ``"backtracks"``, ``"patterns"``).
    limit / spent:
        The configured limit and the amount consumed when the check fired.
    where:
        The loop boundary that noticed (e.g. ``"dp.table"``).
    """

    def __init__(
        self,
        resource: str,
        limit: float,
        spent: float,
        where: str = "",
    ) -> None:
        self.resource = resource
        self.limit = limit
        self.spent = spent
        self.where = where
        at = f" at {where}" if where else ""
        super().__init__(
            f"{resource} budget exceeded{at}: spent {spent:g} of {limit:g}"
        )


class SimulationError(ReproError, ValueError):
    """A simulation request is inconsistent with the target circuit."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment-harness level failure (bad id, corrupt checkpoint)."""


class ArtifactWriteError(ReproError, OSError):
    """A durable artifact (journal, checkpoint, bundle) failed to write.

    Raised by :mod:`repro.ioutil` when the filesystem refuses a write —
    ENOSPC, a vanished directory, a permission flip — after the helper
    has cleaned up any temporary droppings.  Dual-inherits
    :class:`OSError` so pre-taxonomy ``except OSError`` clauses keep
    working, but carries structure the bare builtin lacks:

    Attributes
    ----------
    op:
        Which write step failed (``"write"``, ``"fsync"``, ``"replace"``,
        ``"append"``).
    path:
        The destination the caller asked for (not the temp file).
    errno:
        The underlying OS errno when known (e.g. ``errno.ENOSPC``).
    """

    def __init__(
        self,
        op: str,
        path: str,
        message: str,
        errno: Optional[int] = None,
    ) -> None:
        self.op = op
        self.path = path
        # OSError.__init__ with a single arg leaves .errno unset; stash
        # and re-apply after so pattern-matching on errno keeps working.
        super().__init__(f"{op} failed for {path}: {message}")
        self.errno = errno

    def __reduce__(self):
        # OSError's default reduce re-invokes with (errno, strerror) —
        # wrong constructor shape here; pickle must round-trip workers.
        return (
            ArtifactWriteError,
            (self.op, self.path, self._raw_message(), self.errno),
        )

    def _raw_message(self) -> str:
        text = self.args[0] if self.args else ""
        prefix = f"{self.op} failed for {self.path}: "
        if isinstance(text, str) and text.startswith(prefix):
            return text[len(prefix):]
        return str(text)


class SweepInterrupted(ReproError, RuntimeError):
    """A sweep/experiment campaign stopped on SIGTERM/SIGINT, resumably.

    Raised at the next job boundary after a termination signal: the
    in-flight record has been flushed to the checkpoint/journal, so a
    rerun with the same results file resumes exactly where this run
    stopped.  The CLI maps it to its own exit code
    (:data:`repro.cli.EXIT_INTERRUPTED`) so callers can tell "killed but
    resumable" apart from a real failure.

    Attributes
    ----------
    signal_name:
        Which signal stopped the run (``"SIGTERM"`` / ``"SIGINT"``).
    completed:
        Items committed before the stop (safe to resume past).
    remaining:
        Items not yet run.
    """

    def __init__(
        self, signal_name: str, completed: int, remaining: int
    ) -> None:
        self.signal_name = signal_name
        self.completed = completed
        self.remaining = remaining
        super().__init__(
            f"interrupted by {signal_name} after {completed} item(s); "
            f"{remaining} remaining — rerun with the same results file "
            f"to resume"
        )

    def __reduce__(self):
        return (
            SweepInterrupted,
            (self.signal_name, self.completed, self.remaining),
        )


class DivergenceError(ReproError, RuntimeError):
    """Two execution paths that must agree bit-identically disagreed.

    Raised by the self-checking layer (:mod:`repro.verify`) when a
    sampled shadow re-execution or a solver certification finds a
    mismatch — the silent-corruption failure mode every fast path
    (compiled kernels, incremental evaluation, parallel fan-out, the DP)
    is guarded against.

    Attributes
    ----------
    kind:
        Which check diverged (``"fault_sim.cone"``, ``"cop.measures"``,
        ``"incremental.evaluate"``, ``"solver.cost"``, ...).
    bundle_path:
        Directory of the self-contained repro bundle written for the
        mismatch (``None`` when bundle writing itself failed), replayable
        with ``repro-tpi replay``.
    """

    def __init__(
        self,
        kind: str,
        message: str,
        bundle_path: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.bundle_path = bundle_path
        suffix = f" [repro bundle: {bundle_path}]" if bundle_path else ""
        super().__init__(f"{kind}: {message}{suffix}")

    def __reduce__(self):
        # Custom-constructor exceptions don't pickle by default; workers
        # may raise this across a process boundary.
        return (
            DivergenceError,
            (self.kind, self._raw_message(), self.bundle_path),
        )

    def _raw_message(self) -> str:
        text = self.args[0] if self.args else ""
        prefix = f"{self.kind}: "
        if text.startswith(prefix):
            text = text[len(prefix):]
        suffix = f" [repro bundle: {self.bundle_path}]"
        if self.bundle_path and text.endswith(suffix):
            text = text[: -len(suffix)]
        return text
