"""PODEM: path-oriented decision making for combinational ATPG.

PODEM (Goel 1981) searches over primary-input assignments only: pick an
*objective* (a node/value pair that advances fault excitation or
propagation), *backtrace* it to an unassigned input, assign, imply, and
backtrack on dead ends.  Because the decision space is exactly the input
cube, exhausting it **proves a fault untestable** — which is how the
library identifies redundant faults.

Used here as the deterministic *top-off* companion to test point
insertion: after random patterns (with or without inserted points) plateau,
PODEM generates compact test cubes for the stragglers
(:mod:`repro.atpg.topoff`).

The implementation keeps two ternary machines — good and faulty — instead
of a fused five-valued algebra; a fault effect exists on a node when both
machines are binary and disagree (the D/D̄ of the classic notation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..circuit.gates import GateType, controlling_value
from ..circuit.netlist import Circuit
from ..resilience import Budget
from ..sim.faults import Fault
from ..testability.scoap import SCOAPResult, scoap_measures
from .values import X, is_binary, ternary_gate_eval

__all__ = ["ATPGStatus", "ATPGResult", "Podem"]


class ATPGStatus(enum.Enum):
    """Outcome of one test-generation attempt."""

    TESTABLE = "testable"
    UNTESTABLE = "untestable"  # decision space exhausted: redundant fault
    ABORTED = "aborted"  # backtrack limit hit: status unknown

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class ATPGResult:
    """One fault's test-generation outcome.

    Attributes
    ----------
    fault:
        The targeted fault.
    status:
        Testable / untestable / aborted.
    cube:
        For testable faults: a map input → 0/1 covering only the assigned
        inputs (unassigned inputs are don't-cares).
    backtracks:
        Search effort spent.
    decisions:
        Primary-input assignments tried (stack pushes), including the
        ones later undone by backtracking.
    """

    fault: Fault
    status: ATPGStatus
    cube: Optional[Dict[str, int]] = None
    backtracks: int = 0
    decisions: int = 0


@dataclass
class _Decision:
    """One PI decision on the implicit search stack."""

    input_name: str
    value: int
    flipped: bool = False


class Podem:
    """PODEM test generator bound to one circuit.

    Parameters
    ----------
    circuit:
        Combinational netlist (any gate arity).
    backtrack_limit:
        Abort threshold per fault; exhausted search below the limit proves
        untestability (the fault is reported ``ABORTED``, not raised).
    budget:
        Optional cooperative :class:`~repro.resilience.Budget`.  Unlike
        ``backtrack_limit`` (a per-fault effort cap that degrades one
        fault's answer), the budget spans every fault this generator
        touches and *raises*
        :class:`~repro.errors.BudgetExceededError` when its wall clock or
        cumulative ``backtracks`` limit runs out.
    """

    def __init__(
        self,
        circuit: Circuit,
        backtrack_limit: int = 5000,
        budget: Optional[Budget] = None,
    ) -> None:
        circuit.validate()
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self.budget = budget
        self._order = circuit.topological_order()
        self._out_set = set(circuit.outputs)
        self._scoap: SCOAPResult = scoap_measures(circuit)

    # ------------------------------------------------------------------
    # Ternary simulation of good + faulty machines
    # ------------------------------------------------------------------
    def _simulate(
        self, fault: Fault, assignment: Dict[str, int]
    ) -> Tuple[Dict[str, Optional[int]], Dict[str, Optional[int]]]:
        good: Dict[str, Optional[int]] = {}
        faulty: Dict[str, Optional[int]] = {}
        for name in self._order:
            node = self.circuit.node(name)
            if node.is_input:
                g = assignment.get(name, X)
                f = g
            else:
                g = ternary_gate_eval(
                    node.gate_type, [good[fi] for fi in node.fanins]
                )
                fanin_f = []
                for pin, fi in enumerate(node.fanins):
                    v = faulty[fi]
                    if fault.branch == (name, pin):
                        v = fault.value
                    fanin_f.append(v)
                f = ternary_gate_eval(node.gate_type, fanin_f)
            if fault.branch is None and name == fault.node:
                f = fault.value
            good[name] = g
            faulty[name] = f
        return good, faulty

    @staticmethod
    def _has_effect(g: Optional[int], f: Optional[int]) -> bool:
        return is_binary(g) and is_binary(f) and g != f

    def _detected(self, good, faulty) -> bool:
        return any(
            self._has_effect(good[po], faulty[po]) for po in self._out_set
        )

    # ------------------------------------------------------------------
    # Objective selection
    # ------------------------------------------------------------------
    def _excitation_objective(
        self, fault: Fault, good, faulty
    ) -> Optional[Tuple[str, int]]:
        """Set the fault site's good value opposite the stuck value."""
        site_good = good[fault.node]
        if site_good is X:
            return (fault.node, fault.value ^ 1)
        if site_good == fault.value:
            return None  # good value equals stuck value: conflict
        return "excited"  # type: ignore[return-value]

    def _d_frontier(self, fault: Fault, good, faulty) -> List[str]:
        """Gates with a fault effect on some input and an X output."""
        frontier = []
        for name in self._order:
            node = self.circuit.node(name)
            if not node.is_gate or not node.fanins:
                continue
            if good[name] is not X or faulty[name] is not X:
                # Effect already propagated or blocked here.
                if self._has_effect(good[name], faulty[name]):
                    continue
                if good[name] is not X and faulty[name] is not X:
                    continue
            has_input_effect = False
            for pin, fi in enumerate(node.fanins):
                gv, fv = good[fi], faulty[fi]
                if fault.branch == (name, pin):
                    fv = fault.value
                if self._has_effect(gv, fv):
                    has_input_effect = True
                    break
            if has_input_effect and (good[name] is X or faulty[name] is X):
                frontier.append(name)
        return frontier

    def _propagation_objective(
        self, fault: Fault, good, faulty
    ) -> Optional[Tuple[str, int]]:
        """Drive a side input of the closest-to-output D-frontier gate."""
        frontier = self._d_frontier(fault, good, faulty)
        if not frontier:
            return None
        levels = self.circuit.levels()
        # Prefer frontier gates with the cheapest remaining observability.
        frontier.sort(key=lambda n: (self._scoap.co.get(n, 0), -levels[n], n))
        for gate_name in frontier:
            node = self.circuit.node(gate_name)
            nc = controlling_value(node.gate_type)
            for fi in node.fanins:
                if good[fi] is X:
                    if nc is None:
                        return (fi, 0)  # XOR side input: either value works
                    return (fi, nc ^ 1)  # non-controlling value
        return None

    # ------------------------------------------------------------------
    # Backtrace
    # ------------------------------------------------------------------
    def _backtrace(
        self, objective: Tuple[str, int], good
    ) -> Optional[Tuple[str, int]]:
        """Walk the objective to an unassigned primary input."""
        name, value = objective
        guard = 0
        while True:
            guard += 1
            if guard > len(self._order) + 4:
                return None  # defensive: malformed walk
            node = self.circuit.node(name)
            if node.is_input:
                if good[name] is not X:
                    return None
                return (name, value)
            gt = node.gate_type
            if gt in (GateType.CONST0, GateType.CONST1):
                return None
            if gt is GateType.NOT:
                name, value = node.fanins[0], value ^ 1
                continue
            if gt is GateType.BUF:
                name = node.fanins[0]
                continue
            inverted = gt in (GateType.NAND, GateType.NOR, GateType.XNOR)
            want = value ^ 1 if inverted else value
            x_inputs = [fi for fi in node.fanins if good[fi] is X]
            if not x_inputs:
                return None
            cv = controlling_value(gt)
            if gt in (GateType.XOR, GateType.XNOR):
                # Parity: fix all-but-one X input to 0, steer the last one.
                name, value = x_inputs[0], want if len(x_inputs) == 1 else 0
                continue
            if want == (cv ^ 1):
                # All inputs must be non-controlling: pick the hardest X
                # input first (classic heuristic: fail fast).
                name = max(
                    x_inputs,
                    key=lambda fi: self._hardness(fi, cv ^ 1),
                )
                value = cv ^ 1
            else:
                # One controlling input suffices: pick the easiest.
                name = min(x_inputs, key=lambda fi: self._hardness(fi, cv))
                value = cv
        # unreachable

    def _hardness(self, name: str, value: int) -> int:
        return self._scoap.cc1[name] if value else self._scoap.cc0[name]

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def generate(self, fault: Fault) -> ATPGResult:
        """Attempt to generate a test cube for ``fault``."""
        assignment: Dict[str, int] = {}
        stack: List[_Decision] = []
        backtracks = 0
        decisions = 0

        while True:
            if self.budget is not None:
                self.budget.tick("podem.decision")
            good, faulty = self._simulate(fault, assignment)
            if self._detected(good, faulty):
                return self._finish(
                    ATPGResult(
                        fault=fault,
                        status=ATPGStatus.TESTABLE,
                        cube=dict(assignment),
                        backtracks=backtracks,
                        decisions=decisions,
                    )
                )

            objective: Optional[Tuple[str, int]]
            excitation = self._excitation_objective(fault, good, faulty)
            if excitation is None:
                objective = None  # conflict at the site
            elif excitation == "excited":
                objective = self._propagation_objective(fault, good, faulty)
            else:
                objective = excitation

            move: Optional[Tuple[str, int]] = None
            if objective is not None:
                move = self._backtrace(objective, good)

            if move is not None:
                pi, value = move
                assignment[pi] = value
                stack.append(_Decision(pi, value))
                decisions += 1
                continue

            # Dead end: backtrack.
            backtracks += 1
            if self.budget is not None:
                self.budget.charge("backtracks", 1, "podem.backtrack")
            if backtracks > self.backtrack_limit:
                return self._finish(
                    ATPGResult(
                        fault=fault,
                        status=ATPGStatus.ABORTED,
                        backtracks=backtracks,
                        decisions=decisions,
                    )
                )
            while stack and stack[-1].flipped:
                dead = stack.pop()
                del assignment[dead.input_name]
            if not stack:
                return self._finish(
                    ATPGResult(
                        fault=fault,
                        status=ATPGStatus.UNTESTABLE,
                        backtracks=backtracks,
                        decisions=decisions,
                    )
                )
            top = stack[-1]
            top.value ^= 1
            top.flipped = True
            assignment[top.input_name] = top.value

    @staticmethod
    def _finish(result: ATPGResult) -> ATPGResult:
        """Publish one attempt's search-effort telemetry."""
        obs.count("podem.faults")
        obs.count("podem.backtracks", result.backtracks)
        obs.count("podem.decisions", result.decisions)
        obs.count(f"podem.{result.status.value}")
        return result

    # ------------------------------------------------------------------
    def generate_all(
        self, faults: Sequence[Fault]
    ) -> Dict[Fault, ATPGResult]:
        """Run :meth:`generate` over a fault list."""
        with obs.span(
            "podem.generate_all",
            circuit=self.circuit.name,
            n_faults=len(faults),
        ) as sp:
            results = {f: self.generate(f) for f in faults}
            sp.set(
                testable=sum(
                    1
                    for r in results.values()
                    if r.status is ATPGStatus.TESTABLE
                ),
                backtracks=sum(r.backtracks for r in results.values()),
            )
        return results

    def untestable_faults(self, faults: Sequence[Fault]) -> List[Fault]:
        """Faults *proven* untestable (aborted faults are not included)."""
        return [
            f
            for f, r in self.generate_all(faults).items()
            if r.status is ATPGStatus.UNTESTABLE
        ]
