"""Deterministic test generation (PODEM) and the random+top-off flow."""

from .podem import ATPGResult, ATPGStatus, Podem
from .topoff import TopOffReport, top_off
from .values import X, is_binary, ternary_gate_eval

__all__ = [
    "Podem",
    "ATPGResult",
    "ATPGStatus",
    "TopOffReport",
    "top_off",
    "X",
    "is_binary",
    "ternary_gate_eval",
]
