"""Deterministic top-off: ATPG cubes for the faults random patterns miss.

The classic production flow this library supports end to end:

1. apply a pseudo-random pattern budget (optionally after test point
   insertion) and fault simulate;
2. hand the surviving faults to PODEM;
3. fill each cube's don't-cares randomly and append the deterministic
   patterns, re-simulating to confirm the kill.

The result separates *proven redundant* faults (PODEM exhausted the input
space) from aborts, so the reported "coverage of detectable faults" is
exact — the number the literature quotes for circuits with redundancy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..circuit.netlist import Circuit
from ..resilience import Budget
from ..sim.fault_sim import FaultSimulator
from ..sim.faults import Fault, collapse_faults
from ..sim.patterns import PatternSource, UniformRandomSource
from .podem import ATPGStatus, Podem

__all__ = ["TopOffReport", "top_off"]


@dataclass
class TopOffReport:
    """Outcome of the random-then-deterministic flow.

    Attributes
    ----------
    n_random_patterns / n_deterministic_patterns:
        Budget split between the two phases.
    random_coverage:
        Collapsed coverage after the random phase alone.
    final_coverage:
        Coverage after appending the deterministic patterns.
    detectable_coverage:
        Final coverage over detectable faults only (redundant faults
        excluded from the denominator).
    cubes:
        The generated test cubes (input → 0/1, don't-cares absent).
    redundant / aborted:
        Faults proven untestable / abandoned at the backtrack limit.
    """

    n_random_patterns: int
    n_deterministic_patterns: int = 0
    random_coverage: float = 0.0
    final_coverage: float = 0.0
    detectable_coverage: float = 0.0
    cubes: List[Dict[str, int]] = field(default_factory=list)
    redundant: List[Fault] = field(default_factory=list)
    aborted: List[Fault] = field(default_factory=list)

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"random {self.n_random_patterns} patterns: "
            f"{100 * self.random_coverage:.2f}% | "
            f"+{self.n_deterministic_patterns} deterministic: "
            f"{100 * self.final_coverage:.2f}% "
            f"({100 * self.detectable_coverage:.2f}% of detectable; "
            f"{len(self.redundant)} redundant, {len(self.aborted)} aborted)"
        )


def top_off(
    circuit: Circuit,
    n_random_patterns: int,
    source: Optional[PatternSource] = None,
    faults: Optional[Sequence[Fault]] = None,
    backtrack_limit: int = 5000,
    fill_seed: int = 0,
    budget: Optional[Budget] = None,
) -> TopOffReport:
    """Run the random-then-deterministic flow on ``circuit``.

    Parameters
    ----------
    n_random_patterns:
        Pseudo-random budget for phase one.
    source:
        Pattern source (default seeded uniform).
    faults:
        Fault list (default: collapsed stuck-at representatives).
    backtrack_limit:
        PODEM effort cap per fault.
    fill_seed:
        Seed for don't-care filling in the deterministic patterns.
    budget:
        Optional cooperative budget shared by the random-phase fault
        simulation and the PODEM phase.
    """
    source = source or UniformRandomSource(seed=1)
    if faults is None:
        faults = collapse_faults(circuit).representatives
    sim = FaultSimulator(circuit)
    stimulus = source.generate(circuit.inputs, n_random_patterns)
    random_result = sim.run(
        stimulus, n_random_patterns, faults=faults, budget=budget
    )
    survivors = random_result.undetected_faults()

    podem = Podem(circuit, backtrack_limit=backtrack_limit, budget=budget)
    cubes: List[Dict[str, int]] = []
    redundant: List[Fault] = []
    aborted: List[Fault] = []
    for fault in survivors:
        result = podem.generate(fault)
        if result.status is ATPGStatus.TESTABLE:
            cubes.append(result.cube or {})
        elif result.status is ATPGStatus.UNTESTABLE:
            redundant.append(fault)
        else:
            aborted.append(fault)

    # Phase two: append the filled cubes and re-simulate the survivors.
    rng = random.Random(fill_seed)
    extra = len(cubes)
    detected_extra = set()
    if extra:
        words = {pi: 0 for pi in circuit.inputs}
        for p, cube in enumerate(cubes):
            for pi in circuit.inputs:
                bit = cube.get(pi)
                if bit is None:
                    bit = rng.getrandbits(1)
                if bit:
                    words[pi] |= 1 << p
        det_result = sim.run(words, extra, faults=survivors)
        detected_extra = {
            f for f in survivors if det_result.detection_word[f]
        }

    detected_total = len(random_result.detected_faults()) + len(detected_extra)
    n_faults = len(faults)
    n_detectable = n_faults - len(redundant)
    return TopOffReport(
        n_random_patterns=n_random_patterns,
        n_deterministic_patterns=extra,
        random_coverage=random_result.coverage(),
        final_coverage=detected_total / n_faults if n_faults else 1.0,
        detectable_coverage=(
            detected_total / n_detectable if n_detectable else 1.0
        ),
        cubes=cubes,
        redundant=redundant,
        aborted=aborted,
    )
