"""Three-valued (0/1/X) scalar logic for the ATPG engine.

PODEM reasons about partially assigned circuits, so every signal carries a
ternary value; the composite five-valued D-algebra (0, 1, X, D, D̄) is
represented as a *pair* of ternary values — one for the good machine, one
for the faulty machine — which keeps the gate evaluation tables tiny and
the fault-effect bookkeeping explicit.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..circuit.gates import GateType

__all__ = ["X", "ternary_gate_eval", "is_binary"]

#: The unknown value. 0 and 1 are plain ints; X is None.
X = None

Ternary = Optional[int]


def is_binary(value: Ternary) -> bool:
    """True for a fully assigned (0/1) value."""
    return value is not None


def ternary_gate_eval(gate_type: GateType, inputs: Sequence[Ternary]) -> Ternary:
    """Evaluate one gate over ternary inputs.

    Controlling values decide outputs even when other inputs are X (the
    property PODEM's implication step relies on).
    """
    if gate_type in (GateType.AND, GateType.NAND):
        if any(v == 0 for v in inputs):
            out: Ternary = 0
        elif all(v == 1 for v in inputs):
            out = 1
        else:
            out = X
        if gate_type is GateType.NAND and out is not X:
            out ^= 1
        return out
    if gate_type in (GateType.OR, GateType.NOR):
        if any(v == 1 for v in inputs):
            out = 1
        elif all(v == 0 for v in inputs):
            out = 0
        else:
            out = X
        if gate_type is GateType.NOR and out is not X:
            out ^= 1
        return out
    if gate_type in (GateType.XOR, GateType.XNOR):
        if any(v is X for v in inputs):
            return X
        out = 0
        for v in inputs:
            out ^= v
        if gate_type is GateType.XNOR:
            out ^= 1
        return out
    if gate_type is GateType.NOT:
        return X if inputs[0] is X else inputs[0] ^ 1
    if gate_type is GateType.BUF:
        return inputs[0]
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return 1
    raise ValueError(f"unknown gate type {gate_type!r}")
