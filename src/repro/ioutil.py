"""Atomic and durable file-write helpers shared by every artifact producer.

Results files, perf snapshots, checkpoints' sidecars, repro bundles, and
the fabric result journal are all read by *other* processes (CI artifact
uploads, resumed sweeps, ``repro-tpi replay``, ``repro-tpi
fabric-status``), so a crash mid-write must never leave a torn file
behind.  Two disciplines cover every writer:

* **whole-file atomicity** (:func:`atomic_write_text` /
  :func:`atomic_write_json`): the classic POSIX recipe — write to a
  temporary file in the same directory, flush + fsync, then
  ``os.replace`` — readers observe either the old content or the
  complete new content, never a prefix;
* **durable appends** (:func:`append_durable_line`): append-mode JSONL
  streams (sweep checkpoints, the fabric journal) flush + fsync each
  record, so a committed line survives ``kill -9``; a crash can tear at
  most the line in flight, which readers tolerate
  (:func:`read_jsonl_tolerant`) and re-openers repair
  (:func:`repair_jsonl_tail`) so the next append starts on a fresh line.

Failures are structured: every helper converts the bare :class:`OSError`
the filesystem raises (ENOSPC, a vanished directory, a permission flip)
into :class:`~repro.errors.ArtifactWriteError` — after cleaning up any
temporary droppings — so callers can retry or degrade without pattern-
matching errno out of a string.  For tests, :func:`inject_faults`
installs a deterministic fault hook that makes any write step fail on
purpose (the fabric chaos campaign uses it to inject ENOSPC on journal
commits).
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
from pathlib import Path
from typing import Callable, Iterator, List, Optional, TextIO, Tuple, Union

from .errors import ArtifactWriteError

__all__ = [
    "atomic_write_text",
    "atomic_write_json",
    "atomic_replace_dir",
    "append_durable_line",
    "repair_jsonl_tail",
    "read_jsonl_tolerant",
    "set_fault_hook",
    "inject_faults",
]

#: Test-only fault-injection hook.  When set, every write step calls it
#: with ``(op, path)`` *before* touching the filesystem; the hook raises
#: an :class:`OSError` to simulate that step failing (ENOSPC, EIO, ...).
#: ``None`` (production) costs one attribute load per step.
_FAULT_HOOK: Optional[Callable[[str, Path], None]] = None
_FAULT_LOCK = threading.Lock()


def set_fault_hook(
    hook: Optional[Callable[[str, Path], None]],
) -> Optional[Callable[[str, Path], None]]:
    """Install (or clear, with ``None``) the write fault hook; returns
    the previous hook so callers can restore it."""
    global _FAULT_HOOK
    with _FAULT_LOCK:
        previous = _FAULT_HOOK
        _FAULT_HOOK = hook
    return previous


@contextlib.contextmanager
def inject_faults(hook: Callable[[str, Path], None]) -> Iterator[None]:
    """Context manager: run the body with ``hook`` as the fault hook.

    The hook receives ``(op, path)`` for every write step — ``op`` is one
    of ``"write"``, ``"fsync"``, ``"replace"``, ``"append"`` — and raises
    :class:`OSError` to make that step fail.  The previous hook is
    restored on exit, even on error.
    """
    previous = set_fault_hook(hook)
    try:
        yield
    finally:
        set_fault_hook(previous)


def _check_fault(op: str, path: Path) -> None:
    hook = _FAULT_HOOK
    if hook is not None:
        hook(op, path)


def _wrap_os_error(op: str, path: Path, exc: OSError) -> ArtifactWriteError:
    return ArtifactWriteError(
        op, str(path), str(exc), errno=getattr(exc, "errno", None)
    )


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> Path:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``).

    On any filesystem failure the temporary file is removed (best
    effort) and a structured :class:`~repro.errors.ArtifactWriteError`
    is raised — the destination is untouched either way.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    op = "write"
    try:
        try:
            _check_fault("write", path)
            with tmp.open("w", encoding=encoding) as handle:
                handle.write(text)
                handle.flush()
                op = "fsync"
                _check_fault("fsync", path)
                os.fsync(handle.fileno())
            op = "replace"
            _check_fault("replace", path)
            os.replace(tmp, path)
        except OSError as exc:
            raise _wrap_os_error(op, path, exc) from exc
    finally:
        # Replace failed or never ran: leave no droppings.  Cleanup
        # itself failing (e.g. the directory vanished) must not mask
        # the original error.
        with contextlib.suppress(OSError):
            if tmp.exists():
                tmp.unlink()
    return path


def atomic_write_json(
    path: Union[str, Path],
    payload: object,
    indent: int = 2,
    sort_keys: bool = True,
    default=None,
) -> Path:
    """Serialize ``payload`` as JSON and write it atomically to ``path``."""
    text = json.dumps(
        payload, indent=indent, sort_keys=sort_keys, default=default
    )
    return atomic_write_text(path, text + "\n")


def append_durable_line(
    handle: TextIO, line: str, path: Union[str, Path]
) -> None:
    """Append one newline-terminated record durably (write+flush+fsync).

    ``handle`` must be an append-mode text handle on ``path`` (the path
    is only used for fault attribution and error messages).  ``line``
    must not itself contain newlines — one call is one record.  After
    this returns the record survives ``kill -9``; if it raises
    (:class:`~repro.errors.ArtifactWriteError`), the record may be torn
    or absent and the caller must treat it as *not written* — tolerant
    readers skip the partial line and :func:`repair_jsonl_tail` restores
    append alignment on the next open.
    """
    if "\n" in line:
        raise ValueError("a durable record must be a single line")
    path = Path(path)
    try:
        _check_fault("append", path)
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    except OSError as exc:
        raise _wrap_os_error("append", path, exc) from exc


def repair_jsonl_tail(path: Union[str, Path]) -> bool:
    """Ensure an append-mode JSONL file ends on a line boundary.

    A writer killed mid-append can leave a final line without its
    newline; appending the next record would then concatenate two
    records into one corrupt line.  Called before re-opening a journal
    for append: if the file exists, is non-empty, and does not end in
    ``\\n``, a newline is appended (the torn fragment becomes its own
    undecodable line, which tolerant readers already skip).  Returns
    True when a repair was made.

    Missing and zero-length files need no repair and return False — the
    size is measured on the open handle (not stat-then-seek), so a file
    shrinking between checks can never turn into a seek error.  A
    whitespace-only tail (e.g. a lone space) is still a tail without a
    newline and is terminated like any other torn fragment.
    """
    path = Path(path)
    try:
        try:
            handle = path.open("rb")
        except FileNotFoundError:
            return False
        with handle:
            size = handle.seek(0, os.SEEK_END)
            if size == 0:
                return False
            handle.seek(size - 1)
            last = handle.read(1)
        if last == b"\n":
            return False
        _check_fault("append", path)
        with path.open("ab") as handle:
            handle.write(b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        return True
    except OSError as exc:
        raise _wrap_os_error("append", path, exc) from exc


def read_jsonl_tolerant(
    path: Union[str, Path],
) -> Tuple[List[dict], List[str], List[str]]:
    """Read a JSONL file, tolerating torn/corrupt lines.

    Returns ``(records, good_lines, bad_lines)``: every line that decodes
    to a JSON object becomes a record (its raw text preserved in
    ``good_lines``, index-aligned); every line that fails to decode — the
    torn final line of a killed writer, a disk-corrupted middle line, a
    non-object — lands verbatim in ``bad_lines``.  Callers decide what to
    do with the casualties: the sweep checkpoint reader quarantines them
    to a ``.bad`` sidecar, the fabric journal and trace loaders merely
    count them.
    """
    records: List[dict] = []
    good: List[str] = []
    bad: List[str] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError:
            bad.append(line)
            continue
        if not isinstance(record, dict):
            bad.append(line)
            continue
        records.append(record)
        good.append(line)
    return records, good, bad


def atomic_replace_dir(tmp_dir: Union[str, Path], final_dir: Union[str, Path]) -> Path:
    """Move a fully-written ``tmp_dir`` into place as ``final_dir``.

    Uses ``os.rename`` so the directory appears atomically.  If
    ``final_dir`` already exists (an identical bundle was written by a
    concurrent process — bundle names are content-addressed), the new
    copy is discarded and the existing directory wins.
    """
    tmp_dir, final_dir = Path(tmp_dir), Path(final_dir)
    try:
        os.rename(tmp_dir, final_dir)
    except OSError:
        if final_dir.is_dir():  # lost the race to an identical writer
            import shutil

            shutil.rmtree(tmp_dir, ignore_errors=True)
        else:
            raise
    return final_dir
