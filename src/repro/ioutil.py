"""Atomic file-write helpers shared by every artifact producer.

Results files, perf snapshots, checkpoints' sidecars, and repro bundles
are all read by *other* processes (CI artifact uploads, resumed sweeps,
``repro-tpi replay``), so a crash mid-write must never leave a torn file
behind.  The classic POSIX recipe is used throughout: write to a
temporary file in the same directory, flush + fsync, then ``os.replace``
— readers observe either the old content or the complete new content,
never a prefix.

Append-mode JSONL streams (sweep checkpoints, trace recorders) are the
deliberate exception: they are torn-tolerant by design — the checkpoint
reader quarantines corrupt lines (see
:func:`repro.analysis.experiments._read_checkpoint_lines`) instead of
requiring whole-file atomicity.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Tuple, Union

__all__ = [
    "atomic_write_text",
    "atomic_write_json",
    "atomic_replace_dir",
    "read_jsonl_tolerant",
]


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> Path:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``)."""
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with tmp.open("w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # replace failed / raised: leave no droppings
            tmp.unlink()
    return path


def atomic_write_json(
    path: Union[str, Path],
    payload: object,
    indent: int = 2,
    sort_keys: bool = True,
    default=None,
) -> Path:
    """Serialize ``payload`` as JSON and write it atomically to ``path``."""
    text = json.dumps(
        payload, indent=indent, sort_keys=sort_keys, default=default
    )
    return atomic_write_text(path, text + "\n")


def read_jsonl_tolerant(
    path: Union[str, Path],
) -> Tuple[List[dict], List[str], List[str]]:
    """Read a JSONL file, tolerating torn/corrupt lines.

    Returns ``(records, good_lines, bad_lines)``: every line that decodes
    to a JSON object becomes a record (its raw text preserved in
    ``good_lines``, index-aligned); every line that fails to decode — the
    torn final line of a killed writer, a disk-corrupted middle line, a
    non-object — lands verbatim in ``bad_lines``.  Callers decide what to
    do with the casualties: the sweep checkpoint reader quarantines them
    to a ``.bad`` sidecar, the trace loaders merely count them.
    """
    records: List[dict] = []
    good: List[str] = []
    bad: List[str] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError:
            bad.append(line)
            continue
        if not isinstance(record, dict):
            bad.append(line)
            continue
        records.append(record)
        good.append(line)
    return records, good, bad


def atomic_replace_dir(tmp_dir: Union[str, Path], final_dir: Union[str, Path]) -> Path:
    """Move a fully-written ``tmp_dir`` into place as ``final_dir``.

    Uses ``os.rename`` so the directory appears atomically.  If
    ``final_dir`` already exists (an identical bundle was written by a
    concurrent process — bundle names are content-addressed), the new
    copy is discarded and the existing directory wins.
    """
    tmp_dir, final_dir = Path(tmp_dir), Path(final_dir)
    try:
        os.rename(tmp_dir, final_dir)
    except OSError:
        if final_dir.is_dir():  # lost the race to an identical writer
            import shutil

            shutil.rmtree(tmp_dir, ignore_errors=True)
        else:
            raise
    return final_dir
