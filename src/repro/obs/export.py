"""Chrome trace-event export: open any recorded trace in Perfetto.

Converts a recorded JSONL trace (:class:`~repro.obs.trace_report.Trace`)
into the Chrome trace-event JSON format understood by ``ui.perfetto.dev``
and ``chrome://tracing``:

* every completed span becomes a ``"ph": "X"`` complete event
  (microsecond ``ts``/``dur``, span attributes as ``args``);
* every free-form trace event becomes a ``"ph": "i"`` instant event;
* the final metrics counters become one ``"ph": "C"`` counter sample so
  totals are visible on the timeline.

Span records carry the recorder's compact thread id (``tid``); worker
telemetry events merged by :func:`repro.sim.parallel.run_parallel` carry
a ``pid`` field and are mapped onto per-worker tracks so chunk work is
visually attributed to the worker that did it.

``validate_chrome_trace`` is a dependency-free schema check used by the
round-trip tests and by CI before uploading the artifact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from .trace_report import Trace, load_trace

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: Phases this exporter emits (a subset of the Chrome trace-event spec).
_PHASES = {"X", "i", "C", "M"}


def _metadata_events(trace: Trace) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "ts": 0,
            "args": {"name": "repro-tpi"},
        }
    ]
    return events


def chrome_trace(source: Union[str, Path, Trace]) -> Dict[str, Any]:
    """Build the Chrome trace-event object for a recorded trace."""
    trace = source if isinstance(source, Trace) else load_trace(source)
    events = _metadata_events(trace)
    for span in trace.spans:
        name = span.get("name")
        dur = span.get("dur_ns")
        if not isinstance(name, str) or not isinstance(dur, (int, float)):
            continue  # torn/foreign record: skip, never raise
        events.append(
            {
                "name": name,
                "ph": "X",
                "pid": 0,
                "tid": span.get("tid", 0),
                "ts": span.get("start_ns", 0) / 1e3,
                "dur": dur / 1e3,
                "args": dict(span.get("attrs") or {}),
            }
        )
    worker_pids: Dict[int, int] = {}
    for record in trace.events:
        name = record.get("name")
        if not isinstance(name, str):
            continue
        args = {
            k: v
            for k, v in record.items()
            if k not in ("event", "name", "t_ns")
        }
        pid = 0
        raw_pid = record.get("pid")
        if name == "parallel.chunk_telemetry" and isinstance(raw_pid, int):
            # One synthetic process track per worker pid, so chunk events
            # group under the worker that produced them.
            pid = worker_pids.setdefault(raw_pid, len(worker_pids) + 1)
        events.append(
            {
                "name": name,
                "ph": "i",
                "s": "g",
                "pid": pid,
                "tid": 0,
                "ts": record.get("t_ns", 0) / 1e3,
                "args": args,
            }
        )
    for pid_real, pid_track in sorted(worker_pids.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid_track,
                "tid": 0,
                "ts": 0,
                "args": {"name": f"worker pid {pid_real}"},
            }
        )
    counters = (trace.metrics or {}).get("counters") or {}
    if counters:
        events.append(
            {
                "name": "counters",
                "ph": "C",
                "pid": 0,
                "tid": 0,
                "ts": (trace.run_dur_ns or 0) / 1e3,
                "args": {
                    k: v
                    for k, v in counters.items()
                    if isinstance(v, (int, float))
                },
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(trace.meta),
    }


def write_chrome_trace(
    source: Union[str, Path, Trace], out_path: Union[str, Path]
) -> Path:
    """Export ``source`` to ``out_path`` as Chrome trace-event JSON."""
    payload = chrome_trace(source)
    errors = validate_chrome_trace(payload)
    if errors:  # an exporter bug, not an input problem: fail loudly
        raise ValueError(
            f"generated chrome trace failed schema check: {errors[:3]}"
        )
    out_path = Path(out_path)
    out_path.write_text(
        json.dumps(payload, separators=(",", ":")) + "\n", encoding="utf-8"
    )
    return out_path


def validate_chrome_trace(obj: Any) -> List[str]:
    """Schema-check a Chrome trace-event object; returns problems found.

    An empty list means the object is structurally valid: a dict with a
    ``traceEvents`` list whose entries each carry a string ``name``, a
    known ``ph``, numeric non-negative ``ts``, integer ``pid``/``tid``,
    and (for ``"X"`` events) a numeric non-negative ``dur``.
    """
    errors: List[str] = []
    if not isinstance(obj, dict):
        return ["top level is not an object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(ev.get("name"), str):
            errors.append(f"{where}: name missing or not a string")
        ph = ev.get("ph")
        if ph not in _PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts missing or negative")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                errors.append(f"{where}: {key} missing or not an int")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event dur missing or negative")
        args = ev.get("args")
        if args is not None and not isinstance(args, dict):
            errors.append(f"{where}: args is not an object")
    return errors
