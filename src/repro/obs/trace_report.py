"""Human-readable summaries of recorded traces.

``repro-tpi report run.jsonl`` lands here: :func:`load_trace` parses the
JSONL event stream back into a :class:`Trace`, and :func:`render_trace`
formats it — run metadata, a per-span-name timing table, the slowest
individual spans as a tree, and the final metrics snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..ioutil import read_jsonl_tolerant

__all__ = ["Trace", "load_trace", "render_trace", "render_metrics"]


@dataclass
class Trace:
    """Parsed contents of one trace file."""

    meta: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    run_dur_ns: Optional[int] = None
    n_lines: int = 0
    n_bad_lines: int = 0


def load_trace(path: Union[str, Path]) -> Trace:
    """Parse a JSONL trace.  Unparseable lines are counted, not fatal.

    Tolerance mirrors the sweep checkpoint reader
    (:func:`repro.ioutil.read_jsonl_tolerant`): a torn final line from a
    killed recorder — or any corrupt middle line — is counted in
    ``n_bad_lines`` and skipped, as is a ``span`` record missing the
    fields every renderer/analyzer needs.  A truncated trace therefore
    always loads; it is simply missing its tail.
    """
    trace = Trace()
    records, good, bad = read_jsonl_tolerant(path)
    trace.n_lines = len(good) + len(bad)
    trace.n_bad_lines = len(bad)
    for record in records:
        kind = record.get("event")
        if kind == "run_start":
            trace.meta = record.get("meta", {})
        elif kind == "span":
            if isinstance(record.get("name"), str) and isinstance(
                record.get("dur_ns"), (int, float)
            ):
                trace.spans.append(record)
            else:  # torn/foreign span record: unusable downstream
                trace.n_bad_lines += 1
        elif kind == "event":
            trace.events.append(record)
        elif kind == "metrics":
            trace.metrics = record.get("metrics", {})
        elif kind == "run_end":
            trace.run_dur_ns = record.get("dur_ns")
    return trace


# ---------------------------------------------------------------------------
def _fmt_ms(ns: float) -> str:
    return f"{ns / 1e6:10.3f}"


def _fmt_num(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.4g}"


def _span_table(spans: List[Dict[str, Any]]) -> List[str]:
    by_name: Dict[str, List[int]] = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span.get("dur_ns", 0))
    width = max((len(n) for n in by_name), default=4)
    lines = [
        f"  {'span':<{width}s} {'count':>7s} {'total ms':>10s} "
        f"{'mean ms':>10s} {'max ms':>10s}"
    ]
    for name, durs in sorted(
        by_name.items(), key=lambda kv: -sum(kv[1])
    ):
        total = sum(durs)
        lines.append(
            f"  {name:<{width}s} {len(durs):7d} {_fmt_ms(total)} "
            f"{_fmt_ms(total / len(durs))} {_fmt_ms(max(durs))}"
        )
    return lines


def _span_tree(spans: List[Dict[str, Any]], limit: int = 40) -> List[str]:
    """Chronological tree of the recorded spans (truncated past ``limit``)."""
    ordered = sorted(spans, key=lambda s: s.get("start_ns", 0))
    lines = []
    for span in ordered[:limit]:
        indent = "  " * span.get("depth", 0)
        attrs = span.get("attrs") or {}
        attr_text = (
            " [" + ", ".join(f"{k}={v}" for k, v in attrs.items()) + "]"
            if attrs
            else ""
        )
        lines.append(
            f"  {indent}{span['name']}  "
            f"{span.get('dur_ns', 0) / 1e6:.3f} ms{attr_text}"
        )
    if len(ordered) > limit:
        lines.append(f"  … {len(ordered) - limit} more spans")
    return lines


def render_metrics(metrics: Dict[str, Any]) -> str:
    """Format a metrics snapshot (the ``metrics`` event payload)."""
    lines: List[str] = []
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    histograms = metrics.get("histograms") or {}
    if counters:
        lines.append("counters")
        width = max(len(n) for n in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}s} {_fmt_num(value):>14s}")
    if gauges:
        lines.append("gauges")
        width = max(len(n) for n in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}s} {_fmt_num(value):>14s}")
    if histograms:
        lines.append("histograms")
        for name, snap in histograms.items():
            lines.append(
                f"  {name}: n={snap.get('count', 0)} "
                f"mean={snap.get('mean', 0.0):.4g} "
                f"min={snap.get('min')} max={snap.get('max')}"
            )
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


def render_trace(source: Union[str, Path, Trace]) -> str:
    """Render a full human-readable trace summary."""
    trace = source if isinstance(source, Trace) else load_trace(source)
    lines: List[str] = ["Trace summary", "============="]
    if trace.meta:
        lines.append("run metadata")
        width = max(len(str(k)) for k in trace.meta)
        for key, value in trace.meta.items():
            lines.append(f"  {key:<{width}s} {value}")
    if trace.run_dur_ns is not None:
        lines.append(f"run duration   {trace.run_dur_ns / 1e9:.3f} s")
    lines.append(
        f"events         {trace.n_lines} lines, {len(trace.spans)} spans, "
        f"{len(trace.events)} custom events"
        + (f", {trace.n_bad_lines} unparseable" if trace.n_bad_lines else "")
    )
    if trace.spans:
        from .analyze import render_phases  # late: sibling module

        lines.append("")
        lines.append("spans by name (sorted by total time)")
        lines.extend(_span_table(trace.spans))
        lines.append("")
        lines.append(render_phases(trace.spans, trace.run_dur_ns))
        lines.append("")
        lines.append("span tree (chronological)")
        lines.extend(_span_tree(trace.spans))
    if trace.metrics:
        lines.append("")
        lines.append(render_metrics(trace.metrics))
    return "\n".join(lines)
