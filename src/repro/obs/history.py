"""Benchmark history: append-only perf records + noise-aware regression gates.

Every BENCH_PERF run can be appended to a schema-versioned JSONL history
(one line per benchmark), keyed by ``(bench, mode, kernel)`` plus a host
fingerprint.  ``repro-tpi bench-compare`` then compares a fresh
``BENCH_PERF.json`` against the rolling baseline (median of the last
*window* matching records) and exits non-zero when any metric regresses
beyond a noise-aware tolerance — the gate CI perf-smoke runs against the
committed ``benchmarks/history/history.jsonl``.

Metric direction is inferred from the name:

* ``seconds*`` and ``overhead_pct`` are **lower-is-better** — regression
  when ``current > baseline * (1 + margin)``;
* ``speedup*`` and ``*_per_sec*`` are **higher-is-better** — regression
  when ``current < baseline / (1 + margin)``;
* anything else (coverage, booleans, counts) is ignored.

The margin is ``max(tolerance, NOISE_MULT * rel_mad)`` where ``rel_mad``
is the baseline window's median-absolute-deviation over its median — a
noisy metric earns itself a wider gate instead of flapping CI.

Cross-host comparability: absolute ``seconds*`` metrics only mean
anything on the recording host, so comparisons can be restricted to the
same host fingerprint (``same_host_only``) or to machine-relative ratio
metrics only (``relative_only`` — what CI uses, since speedups cancel
the runner's absolute speed).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from time import time
from typing import Any, Dict, List, Optional, Sequence, Union

from ..ioutil import read_jsonl_tolerant

__all__ = [
    "HISTORY_SCHEMA",
    "MetricComparison",
    "ComparisonReport",
    "host_fingerprint",
    "fingerprint_key",
    "entries_from_bench_perf",
    "append_history",
    "load_history",
    "rolling_baseline",
    "compare_to_history",
    "render_comparison",
]

HISTORY_SCHEMA = 1

#: Baseline window: records per (bench, metric) feeding the rolling median.
DEFAULT_WINDOW = 5

#: Default regression tolerance (fractional): 15% beyond baseline fails,
#: so the acceptance-level "planted 20% slowdown" is always caught on a
#: clean history.
DEFAULT_TOLERANCE = 0.15

#: How many relative-MADs of baseline noise widen the gate.
NOISE_MULT = 4.0


def host_fingerprint() -> Dict[str, Any]:
    """A stable-ish identity for the machine producing benchmark numbers."""
    return {
        "python": platform.python_version(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def fingerprint_key(fp: Optional[Dict[str, Any]]) -> str:
    """Canonical string form of a host fingerprint (for grouping)."""
    fp = fp or {}
    return "|".join(
        f"{k}={fp.get(k)}" for k in ("python", "platform", "machine", "cpus")
    )


def _is_lower_better(metric: str) -> bool:
    return metric.startswith("seconds") or metric.startswith("overhead")


def _is_higher_better(metric: str) -> bool:
    return metric.startswith("speedup") or "per_sec" in metric


def _is_relative(metric: str) -> bool:
    """Machine-relative ratio metrics, comparable across hosts."""
    return metric.startswith("speedup") or metric.startswith("overhead")


def _gated_metrics(bench_payload: Dict[str, Any]) -> Dict[str, float]:
    """The numeric, direction-ful metrics of one BENCH_PERF benchmark."""
    out: Dict[str, float] = {}
    for key, value in bench_payload.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if _is_lower_better(key) or _is_higher_better(key):
            out[key] = float(value)
    return out


def entries_from_bench_perf(
    payload: Dict[str, Any],
    ts: Optional[float] = None,
    git_rev: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """History entries (one per benchmark) from a BENCH_PERF payload."""
    ts = time() if ts is None else ts
    entries: List[Dict[str, Any]] = []
    for bench, bench_payload in sorted(
        (payload.get("benchmarks") or {}).items()
    ):
        metrics = _gated_metrics(bench_payload)
        if not metrics:
            continue
        entries.append(
            {
                "schema": HISTORY_SCHEMA,
                "ts": ts,
                "bench": bench,
                "mode": payload.get("mode", "full"),
                "kernel": bench_payload.get("kernel")
                or payload.get("kernel", "compiled"),
                "host": host_fingerprint(),
                "git_rev": git_rev,
                "metrics": metrics,
            }
        )
    return entries


def append_history(
    path: Union[str, Path], entries: Sequence[Dict[str, Any]]
) -> Path:
    """Append entries to the JSONL history (created, with parents, if new)."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as sink:
        for entry in entries:
            sink.write(json.dumps(entry, sort_keys=True) + "\n")
        sink.flush()
    return path


def load_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load history records, tolerating torn/corrupt lines.

    Records from a future schema or missing the key fields are skipped —
    an old gate must not crash on a newer writer's file.
    """
    path = Path(path)
    if not path.exists():
        return []
    records, _good, _bad = read_jsonl_tolerant(path)
    out: List[Dict[str, Any]] = []
    for record in records:
        if record.get("schema") != HISTORY_SCHEMA:
            continue
        if not isinstance(record.get("bench"), str):
            continue
        if not isinstance(record.get("metrics"), dict):
            continue
        out.append(record)
    out.sort(key=lambda r: r.get("ts") or 0.0)
    return out


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def rolling_baseline(
    values: Sequence[float], window: int = DEFAULT_WINDOW
) -> Dict[str, float]:
    """Baseline statistics over the trailing ``window`` of ``values``.

    Returns ``{"baseline": median, "rel_mad": mad/median, "n": count}``
    (``rel_mad`` is 0 for an empty/zero baseline).
    """
    tail = list(values)[-window:]
    if not tail:
        return {"baseline": 0.0, "rel_mad": 0.0, "n": 0}
    med = _median(tail)
    mad = _median([abs(v - med) for v in tail])
    rel = (mad / med) if med > 0 else 0.0
    return {"baseline": med, "rel_mad": rel, "n": len(tail)}


@dataclass
class MetricComparison:
    """One metric's current value against its rolling baseline."""

    bench: str
    metric: str
    current: float
    baseline: float
    n_baseline: int
    margin: float  # fractional gate actually applied
    regressed: bool
    lower_is_better: bool

    @property
    def ratio(self) -> float:
        """current/baseline for lower-is-better, inverted otherwise —
        >1 always means "worse"."""
        if self.baseline <= 0 or self.current <= 0:
            return 1.0
        raw = self.current / self.baseline
        return raw if self.lower_is_better else 1.0 / raw

    def describe(self) -> str:
        arrow = "REGRESSION" if self.regressed else "ok"
        direction = "↓better" if self.lower_is_better else "↑better"
        return (
            f"{self.bench}.{self.metric} ({direction}): "
            f"{self.current:g} vs baseline {self.baseline:g} "
            f"(n={self.n_baseline}, gate ±{100 * self.margin:.0f}%, "
            f"worse-ratio {self.ratio:.2f}) {arrow}"
        )


@dataclass
class ComparisonReport:
    """Outcome of one bench-compare run."""

    checked: List[MetricComparison] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricComparison]:
        return [c for c in self.checked if c.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_to_history(
    history: Sequence[Dict[str, Any]],
    current_entries: Sequence[Dict[str, Any]],
    tolerance: float = DEFAULT_TOLERANCE,
    window: int = DEFAULT_WINDOW,
    same_host_only: bool = False,
    relative_only: bool = False,
) -> ComparisonReport:
    """Compare current entries against the rolling history baseline.

    Parameters
    ----------
    history:
        Records from :func:`load_history`.
    current_entries:
        Records from :func:`entries_from_bench_perf` for the fresh run.
    tolerance:
        Minimum fractional margin before a change counts as a regression.
    window:
        Trailing records per (bench, metric) feeding the baseline median.
    same_host_only:
        Only compare against history recorded by this host's fingerprint.
    relative_only:
        Gate only machine-relative ratio metrics (``speedup*`` /
        ``overhead*``) — the cross-host mode CI uses.

    Metrics with no matching baseline are reported in ``skipped``, never
    failed: a brand-new benchmark cannot regress.
    """
    report = ComparisonReport()
    my_host = fingerprint_key(host_fingerprint())
    for entry in current_entries:
        key = (entry["bench"], entry.get("mode"), entry.get("kernel"))
        matching = [
            r
            for r in history
            if (r["bench"], r.get("mode"), r.get("kernel")) == key
            and (
                not same_host_only
                or fingerprint_key(r.get("host")) == my_host
            )
        ]
        if not matching:
            report.skipped.append(
                f"{entry['bench']}: no history for "
                f"mode={entry.get('mode')} kernel={entry.get('kernel')}"
                + (" on this host" if same_host_only else "")
            )
            continue
        for metric, current in sorted(entry["metrics"].items()):
            if relative_only and not _is_relative(metric):
                continue
            series = [
                float(r["metrics"][metric])
                for r in matching
                if isinstance(r["metrics"].get(metric), (int, float))
            ]
            stats = rolling_baseline(series, window)
            if stats["n"] == 0:
                report.skipped.append(
                    f"{entry['bench']}.{metric}: no baseline values"
                )
                continue
            baseline = stats["baseline"]
            margin = max(tolerance, NOISE_MULT * stats["rel_mad"])
            lower = _is_lower_better(metric)
            if baseline <= 0:
                regressed = False
            elif lower:
                regressed = current > baseline * (1.0 + margin)
            else:
                regressed = current < baseline / (1.0 + margin)
            report.checked.append(
                MetricComparison(
                    bench=entry["bench"],
                    metric=metric,
                    current=float(current),
                    baseline=baseline,
                    n_baseline=int(stats["n"]),
                    margin=margin,
                    regressed=regressed,
                    lower_is_better=lower,
                )
            )
    return report


def render_comparison(report: ComparisonReport, verbose: bool = False) -> str:
    """Human-readable bench-compare summary."""
    lines: List[str] = []
    regs = report.regressions
    lines.append(
        f"bench-compare: {len(report.checked)} metric(s) checked, "
        f"{len(regs)} regression(s), {len(report.skipped)} skipped"
    )
    for comparison in regs:
        lines.append(f"  {comparison.describe()}")
    if verbose:
        for comparison in report.checked:
            if not comparison.regressed:
                lines.append(f"  {comparison.describe()}")
        for reason in report.skipped:
            lines.append(f"  skipped: {reason}")
    return "\n".join(lines)
