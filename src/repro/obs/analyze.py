"""Trace analytics: self-time attribution, critical paths, phase tables.

The recorder (:mod:`repro.obs.recorder`) writes one ``span`` event per
*completed* span; this module turns that flat stream back into answers:

* :func:`aggregate_spans` — per-name cumulative time, **self time**
  (cumulative minus direct children — where the clock was actually
  spent), call counts, min/max;
* :func:`critical_path` — the chain of spans that dominates the wall
  clock: starting from the longest root, descend into the longest child
  at every level;
* :func:`phase_table` — attribution of the run across its top-level
  phases (``prepare`` / ``solve`` / ``insert`` / …), as a share of the
  recorded run duration.

All functions operate on the span dictionaries of a loaded
:class:`~repro.obs.trace_report.Trace` and tolerate torn traces: span
records missing required fields are skipped (the loader already counts
them), and children whose parent span never completed (the parent was
still open when the run died) are treated as roots.

Surfaced as ``repro-tpi report <trace.jsonl> --self-time`` /
``--critical-path``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "NameStats",
    "PathStep",
    "PhaseRow",
    "aggregate_spans",
    "critical_path",
    "phase_table",
    "render_self_time",
    "render_critical_path",
    "render_phases",
]


@dataclass
class NameStats:
    """Aggregate timing for every span sharing one name."""

    name: str
    count: int = 0
    total_ns: int = 0
    self_ns: int = 0
    min_ns: int = 0
    max_ns: int = 0


@dataclass
class PathStep:
    """One span on the critical path."""

    name: str
    span_id: int
    dur_ns: int
    self_ns: int
    depth: int
    attrs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class PhaseRow:
    """One top-level phase's share of the run."""

    name: str
    count: int
    total_ns: int
    share: float  # fraction of the run duration (0..1), 0 when unknown


def _usable(spans: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Span records carrying the fields the analytics need.

    A torn or foreign trace can contain span lines with fields missing;
    they are dropped here rather than raising mid-report.
    """
    out = []
    for span in spans:
        name = span.get("name")
        dur = span.get("dur_ns")
        if isinstance(name, str) and isinstance(dur, (int, float)):
            out.append(span)
    return out


def _child_totals(spans: Sequence[Dict[str, Any]]) -> Dict[int, int]:
    """Sum of direct children's durations, keyed by parent span id."""
    totals: Dict[int, int] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            totals[parent] = totals.get(parent, 0) + int(span["dur_ns"])
    return totals


def _self_ns(span: Dict[str, Any], child_totals: Dict[int, int]) -> int:
    """A span's self time: duration minus its direct children.

    Clamped at zero: children running on other threads (the parallel
    fan-out's merge loop) can legitimately overlap their parent.
    """
    return max(int(span["dur_ns"]) - child_totals.get(span.get("id"), 0), 0)


def aggregate_spans(
    spans: Sequence[Dict[str, Any]],
) -> Dict[str, NameStats]:
    """Per-name cumulative/self-time aggregates over span records."""
    spans = _usable(spans)
    child_totals = _child_totals(spans)
    stats: Dict[str, NameStats] = {}
    for span in spans:
        dur = int(span["dur_ns"])
        entry = stats.get(span["name"])
        if entry is None:
            entry = stats[span["name"]] = NameStats(
                span["name"], min_ns=dur, max_ns=dur
            )
        entry.count += 1
        entry.total_ns += dur
        entry.self_ns += _self_ns(span, child_totals)
        entry.min_ns = min(entry.min_ns, dur)
        entry.max_ns = max(entry.max_ns, dur)
    return stats


def critical_path(spans: Sequence[Dict[str, Any]]) -> List[PathStep]:
    """The wall-clock-dominating chain of spans.

    Starts at the root span (no recorded parent) with the largest
    duration and descends, at each level, into the direct child with the
    largest duration.  Ties break on later start, then id, so the result
    is deterministic for any input order.
    """
    spans = _usable(spans)
    if not spans:
        return []
    ids = {span.get("id") for span in spans}
    children: Dict[int, List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent in ids:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    child_totals = _child_totals(spans)

    def weight(span: Dict[str, Any]):
        return (
            int(span["dur_ns"]),
            span.get("start_ns", 0),
            span.get("id", 0),
        )

    path: List[PathStep] = []
    node: Optional[Dict[str, Any]] = max(roots, key=weight, default=None)
    while node is not None:
        path.append(
            PathStep(
                name=node["name"],
                span_id=node.get("id", 0),
                dur_ns=int(node["dur_ns"]),
                self_ns=_self_ns(node, child_totals),
                depth=node.get("depth", len(path)),
                attrs=dict(node.get("attrs") or {}),
            )
        )
        node = max(children.get(node.get("id"), []), key=weight, default=None)
    return path


def phase_table(
    spans: Sequence[Dict[str, Any]], run_dur_ns: Optional[int] = None
) -> List[PhaseRow]:
    """Attribution of the run across its top-level (root) spans.

    Roots are grouped by name; each group's share is its total duration
    over ``run_dur_ns`` (the ``run_end`` duration) when known, else over
    the sum of all root durations.
    """
    spans = _usable(spans)
    ids = {span.get("id") for span in spans}
    groups: Dict[str, List[int]] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is None or parent not in ids:
            groups.setdefault(span["name"], []).append(int(span["dur_ns"]))
    denom = run_dur_ns if run_dur_ns else sum(sum(d) for d in groups.values())
    rows = [
        PhaseRow(
            name=name,
            count=len(durs),
            total_ns=sum(durs),
            share=(sum(durs) / denom) if denom else 0.0,
        )
        for name, durs in groups.items()
    ]
    rows.sort(key=lambda r: (-r.total_ns, r.name))
    return rows


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def _ms(ns: float) -> str:
    return f"{ns / 1e6:10.3f}"


def render_self_time(
    spans: Sequence[Dict[str, Any]], limit: int = 40
) -> str:
    """Per-name table sorted by self time (where the clock really went)."""
    stats = sorted(
        aggregate_spans(spans).values(), key=lambda s: (-s.self_ns, s.name)
    )
    if not stats:
        return "(no spans recorded)"
    total_self = sum(s.self_ns for s in stats) or 1
    width = max(len(s.name) for s in stats[:limit])
    lines = [
        f"  {'span':<{width}s} {'count':>7s} {'self ms':>10s} {'self %':>7s} "
        f"{'total ms':>10s} {'mean ms':>10s} {'max ms':>10s}"
    ]
    for s in stats[:limit]:
        lines.append(
            f"  {s.name:<{width}s} {s.count:7d} {_ms(s.self_ns)} "
            f"{100 * s.self_ns / total_self:6.1f}% {_ms(s.total_ns)} "
            f"{_ms(s.total_ns / s.count)} {_ms(s.max_ns)}"
        )
    if len(stats) > limit:
        lines.append(f"  … {len(stats) - limit} more span names")
    return "\n".join(["self-time by span name"] + lines)


def render_critical_path(spans: Sequence[Dict[str, Any]]) -> str:
    """The critical path as an indented chain with self-time annotation."""
    path = critical_path(spans)
    if not path:
        return "(no spans recorded)"
    root_ns = path[0].dur_ns or 1
    lines = ["critical path (longest child at every level)"]
    for step in path:
        attrs = (
            " [" + ", ".join(f"{k}={v}" for k, v in step.attrs.items()) + "]"
            if step.attrs
            else ""
        )
        lines.append(
            f"  {'  ' * step.depth}{step.name}  "
            f"{step.dur_ns / 1e6:.3f} ms "
            f"({100 * step.dur_ns / root_ns:.1f}% of path root, "
            f"self {step.self_ns / 1e6:.3f} ms){attrs}"
        )
    return "\n".join(lines)


def render_phases(
    spans: Sequence[Dict[str, Any]], run_dur_ns: Optional[int] = None
) -> str:
    """Per-phase attribution table over the top-level spans."""
    rows = phase_table(spans, run_dur_ns)
    if not rows:
        return "(no spans recorded)"
    width = max(len(r.name) for r in rows)
    lines = [
        "phase attribution (top-level spans)",
        f"  {'phase':<{width}s} {'count':>7s} {'total ms':>10s} {'share':>7s}",
    ]
    for r in rows:
        lines.append(
            f"  {r.name:<{width}s} {r.count:7d} {_ms(r.total_ns)} "
            f"{100 * r.share:6.1f}%"
        )
    return "\n".join(lines)
