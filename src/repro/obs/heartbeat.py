"""Periodic heartbeat events from long-running loops.

A stalled solve or sweep should be diagnosable from its trace alone: a
:class:`Heartbeat` is created outside a long loop, ``beat()`` is called
at every loop boundary, and — at most once per interval — it emits one
``heartbeat`` trace event carrying (with the loop's name as ``loop``):

* wall-clock seconds since the heartbeat was created (``elapsed_s``);
* peak RSS from :func:`resource.getrusage` (``rss_peak_kb``; on Linux
  ``ru_maxrss`` is kilobytes — macOS reports bytes, recorded verbatim);
* a snapshot of the recorder's counters (``counters``);
* the kernel-cache hit rate (``kernel_cache_hit_rate``: hits over
  hits + compiles, ``None`` before any kernel activity);
* whatever loop-progress fields the caller passes to ``beat()``.

When no recorder is installed ``beat()`` is one clock read and a
comparison; the interval (default 10 s) can be tuned process-wide via
``REPRO_HEARTBEAT_SEC`` (``0`` disables emission entirely).
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Any, Optional

try:
    import resource
except ImportError:  # non-POSIX platform: heartbeats omit RSS
    resource = None  # type: ignore[assignment]

__all__ = ["Heartbeat", "DEFAULT_INTERVAL_S"]

DEFAULT_INTERVAL_S = 10.0


def _env_interval() -> float:
    raw = os.environ.get("REPRO_HEARTBEAT_SEC")
    if raw is None:
        return DEFAULT_INTERVAL_S
    try:
        return float(raw)
    except ValueError:
        return DEFAULT_INTERVAL_S


def _rss_peak_kb() -> Optional[int]:
    if resource is None:
        return None
    try:
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except (OSError, ValueError):
        return None


class Heartbeat:
    """Rate-limited liveness emitter for one long-running loop."""

    __slots__ = ("name", "interval_s", "beats", "_start", "_last")

    def __init__(self, name: str, interval_s: Optional[float] = None) -> None:
        self.name = name
        self.interval_s = (
            interval_s if interval_s is not None else _env_interval()
        )
        self.beats = 0
        self._start = perf_counter()
        self._last = self._start

    def beat(self, **fields: Any) -> bool:
        """Emit a heartbeat if the interval elapsed; returns whether it did.

        Safe to call at any frequency: the fast path is one
        ``perf_counter`` read and a comparison.
        """
        if self.interval_s <= 0:
            return False
        now = perf_counter()
        if now - self._last < self.interval_s:
            return False
        from . import count, event, get_recorder  # late: avoid cycle

        recorder = get_recorder()
        if recorder is None:
            # Still advance the clock so an eventually-installed recorder
            # does not receive a burst of queued-up beats.
            self._last = now
            return False
        counters = recorder.metrics.snapshot().get("counters", {})
        hits = counters.get("kernel.cache_hits", 0.0)
        compiles = counters.get("kernel.compiles", 0.0)
        hit_rate = (
            hits / (hits + compiles) if (hits + compiles) > 0 else None
        )
        event(
            "heartbeat",
            loop=self.name,
            elapsed_s=round(now - self._start, 3),
            rss_peak_kb=_rss_peak_kb(),
            kernel_cache_hit_rate=hit_rate,
            counters=counters,
            **fields,
        )
        count("heartbeat.emitted")
        self._last = now
        self.beats += 1
        return True
