"""Run recording: structured JSONL event sink + metrics aggregation.

A :class:`RunRecorder` captures one run of the system:

* a ``run_start`` event with run metadata (circuit, seed, git revision,
  python version — whatever the caller supplies via ``metadata``);
* one ``span`` event per completed :class:`~repro.obs.spans.Span`
  (relative start, duration, parent/depth, attributes);
* free-form ``event`` lines (``recorder.event("dp.grid", size=33)``);
* a final ``metrics`` snapshot plus ``run_end`` on :meth:`close`.

Every line is one self-contained JSON object, so traces stream and
truncated files stay parseable line-by-line.  Constructed with
``path=None`` the recorder aggregates metrics without touching disk —
the CLI's ``--metrics``-without-``--trace-out`` mode.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import threading
import uuid
from pathlib import Path
from time import perf_counter_ns, time
from typing import Any, Dict, Optional, Union

from .metrics import MetricsRegistry
from .spans import Span

__all__ = ["RunRecorder", "git_revision", "run_metadata"]

SCHEMA_VERSION = 1


def git_revision(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """Short git revision of ``cwd`` (or the process cwd), else ``None``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=str(cwd) if cwd else None,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def run_metadata(**extra: Any) -> Dict[str, Any]:
    """Standard run metadata (python, platform, git rev) plus ``extra``."""
    meta: Dict[str, Any] = {
        "python": platform.python_version(),
        "platform": sys.platform,
        "git_rev": git_revision(Path(__file__).resolve().parent),
    }
    meta.update(extra)
    return meta


def _jsonable(value: Any) -> Any:
    """Coerce attribute values to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


class RunRecorder:
    """JSONL trace sink + in-process metrics for one run.

    Parameters
    ----------
    path:
        Trace output file (truncated on open).  ``None`` disables the
        sink but keeps metrics aggregation.
    metadata:
        Arbitrary JSON-able run metadata for the ``run_start`` event.
    registry:
        Metrics registry to aggregate into (default: a fresh one).
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        metadata: Optional[Dict[str, Any]] = None,
        registry: Optional[MetricsRegistry] = None,
        run_id: Optional[str] = None,
    ) -> None:
        self.metadata = dict(metadata or {})
        self.metrics = registry if registry is not None else MetricsRegistry()
        #: Stable identifier for this run, propagated to parallel workers
        #: so their telemetry can be attributed back to the parent trace.
        self.run_id: str = run_id or uuid.uuid4().hex[:16]
        self._lock = threading.Lock()
        self._epoch_ns = perf_counter_ns()
        self._n_spans = 0
        self._closed = False
        self._file = None
        #: Compact per-run thread ids: the first thread to emit a span is
        #: tid 0, the next 1, … — stable within a trace, small in JSON.
        self._tids: Dict[int, int] = {}
        self.path: Optional[Path] = None
        if path is not None:
            self.path = Path(path)
            self._file = self.path.open("w", encoding="utf-8")
        self._write(
            {
                "event": "run_start",
                "schema": SCHEMA_VERSION,
                "run_id": self.run_id,
                "ts": time(),
                "meta": _jsonable(self.metadata),
            }
        )

    # ------------------------------------------------------------------
    def _write(self, record: Dict[str, Any]) -> None:
        if self._file is None:
            return
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            if not self._closed:
                self._file.write(line + "\n")

    # ------------------------------------------------------------------
    # The obs-facing surface (mirrored by the module-level functions).
    # ------------------------------------------------------------------
    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Span:
        """A new span bound to this recorder (enter it to start timing)."""
        return Span(name, attrs, self)

    def count(self, name: str, n: float = 1.0) -> None:
        self.metrics.count(name, n)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def event(self, name: str, **fields: Any) -> None:
        """Write a free-form event line."""
        self._write(
            {
                "event": "event",
                "name": name,
                "t_ns": perf_counter_ns() - self._epoch_ns,
                **{k: _jsonable(v) for k, v in fields.items()},
            }
        )

    # ------------------------------------------------------------------
    def _emit_span(self, span: Span) -> None:
        """Called by :meth:`Span.__exit__`; spans arrive innermost-first."""
        self._n_spans += 1
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.setdefault(ident, len(self._tids))
        record: Dict[str, Any] = {
            "event": "span",
            "name": span.name,
            "id": span.span_id,
            "start_ns": span.start_ns - self._epoch_ns,
            "dur_ns": span.duration_ns,
            "depth": span.depth,
            "tid": tid,
        }
        if span.parent_id is not None:
            record["parent"] = span.parent_id
        if span.attrs:
            record["attrs"] = _jsonable(span.attrs)
        self._write(record)

    # ------------------------------------------------------------------
    @property
    def n_spans(self) -> int:
        """Number of span events emitted so far."""
        return self._n_spans

    def close(self) -> None:
        """Flush the metrics snapshot + ``run_end`` and close the sink."""
        if self._closed:
            return
        self._write(
            {"event": "metrics", "metrics": self.metrics.snapshot()}
        )
        self._write(
            {
                "event": "run_end",
                "ts": time(),
                "dur_ns": perf_counter_ns() - self._epoch_ns,
                "n_spans": self._n_spans,
            }
        )
        with self._lock:
            self._closed = True
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False
