"""repro.obs — dependency-free observability: tracing, metrics, run records.

The solver, simulator, and ATPG hot paths call this module's functions
*unconditionally*::

    from .. import obs

    with obs.span("dp.solve", circuit=circuit.name) as sp:
        ...
        obs.count("dp.table_cells", cells)
        sp.set(cost=solution.cost)

With no recorder configured (the default) every call is a single global
load, a ``None`` check, and an immediate return — measured at well under
5% of any real workload (see ``tests/obs/test_overhead.py``).  Installing
a :class:`~repro.obs.recorder.RunRecorder` (the CLI does this for
``--trace-out`` / ``--metrics``) turns the same calls into structured
JSONL span events and registry updates.

Layers and what they emit are catalogued in DESIGN.md §7.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from .analyze import (
    aggregate_spans,
    critical_path,
    phase_table,
    render_critical_path,
    render_phases,
    render_self_time,
)
from .export import chrome_trace, validate_chrome_trace, write_chrome_trace
from .heartbeat import Heartbeat
from .metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from .profile import SamplingProfiler, SpanScopedProfile
from .recorder import RunRecorder, git_revision, run_metadata
from .spans import (
    NULL_SPAN,
    NullSpan,
    Span,
    add_span_hooks,
    current_span,
    remove_span_hooks,
)
from .trace_report import Trace, load_trace, render_metrics, render_trace

__all__ = [
    "DEFAULT_BUCKETS",
    "Heartbeat",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "RunRecorder",
    "SamplingProfiler",
    "Span",
    "SpanScopedProfile",
    "Trace",
    "add_span_hooks",
    "aggregate_spans",
    "chrome_trace",
    "count",
    "critical_path",
    "current_span",
    "enabled",
    "event",
    "gauge",
    "get_recorder",
    "git_revision",
    "load_trace",
    "observe",
    "phase_table",
    "recording",
    "remove_span_hooks",
    "render_critical_path",
    "render_metrics",
    "render_phases",
    "render_self_time",
    "render_trace",
    "run_metadata",
    "set_recorder",
    "span",
    "timed",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: The process-wide recorder; ``None`` means observability is disabled.
_recorder: Optional[RunRecorder] = None


def set_recorder(recorder: Optional[RunRecorder]) -> Optional[RunRecorder]:
    """Install ``recorder`` as the process recorder; returns the previous one."""
    global _recorder
    previous = _recorder
    _recorder = recorder
    return previous


def get_recorder() -> Optional[RunRecorder]:
    """The currently installed recorder, if any."""
    return _recorder


def enabled() -> bool:
    """Whether a recorder is installed (guard for bulk emission loops)."""
    return _recorder is not None


class recording:
    """Context manager installing a recorder for its dynamic extent::

        with obs.recording(RunRecorder("run.jsonl")) as rec:
            ...

    Restores the previous recorder and closes the new one on exit.
    """

    def __init__(self, recorder: RunRecorder) -> None:
        self.recorder = recorder
        self._previous: Optional[RunRecorder] = None

    def __enter__(self) -> RunRecorder:
        self._previous = set_recorder(self.recorder)
        return self.recorder

    def __exit__(self, *exc: object) -> bool:
        set_recorder(self._previous)
        self.recorder.close()
        return False


# ---------------------------------------------------------------------------
# Hot-path functions.  Each loads the global once; the disabled branch is
# the first, cheapest one.
# ---------------------------------------------------------------------------
def span(name: str, **attrs: Any) -> Union[Span, NullSpan]:
    """A recorded span, or the shared no-op span when disabled."""
    recorder = _recorder
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, attrs or None)


def timed(name: str, **attrs: Any) -> Span:
    """A span that *always* times, recorder or not.

    For measurements whose duration feeds back into results (experiment
    runtime columns): ``sp.seconds`` is valid after — or during — the
    ``with`` block, and the span is additionally recorded when a
    recorder is installed.
    """
    return Span(name, attrs or None, _recorder)


def count(name: str, n: float = 1.0) -> None:
    """Increment a counter (no-op when disabled)."""
    recorder = _recorder
    if recorder is not None:
        recorder.count(name, n)


def gauge(name: str, value: float) -> None:
    """Set a gauge (no-op when disabled)."""
    recorder = _recorder
    if recorder is not None:
        recorder.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Add a histogram observation (no-op when disabled)."""
    recorder = _recorder
    if recorder is not None:
        recorder.observe(name, value)


def event(name: str, **fields: Any) -> None:
    """Write a free-form trace event (no-op when disabled)."""
    recorder = _recorder
    if recorder is not None:
        recorder.event(name, **fields)
