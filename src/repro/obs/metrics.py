"""Thread-safe in-process metrics: counters, gauges, fixed-bucket histograms.

The registry is intentionally tiny — a dict of floats per kind behind one
lock — because it sits on solver hot paths.  Histograms use *fixed* upper
bounds chosen at first observation (Prometheus-style cumulative-ish
layout, but stored as per-bucket counts plus an overflow bucket), so
bucketing one value is a single linear scan over a short tuple.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["DEFAULT_BUCKETS", "Histogram", "MetricsRegistry"]

#: Geometric 1–2.5–5 ladder spanning microseconds to kilo-units; a sane
#: default for both durations (seconds) and size-ish quantities.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-6, 7) for m in (1.0, 2.5, 5.0)
)


class Histogram:
    """Fixed-bucket histogram: counts per upper bound + overflow + sum.

    ``bounds`` are inclusive upper bounds in increasing order; a value
    above the last bound lands in the overflow bucket.  Not locked —
    the owning :class:`MetricsRegistry` serializes access.
    """

    __slots__ = ("bounds", "counts", "overflow", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if not self.bounds or list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.counts: List[int] = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.bounds, value)
        if idx == len(self.bounds):
            self.overflow += 1
        else:
            self.counts[idx] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view; empty buckets are elided for compactness.

        ``bounds`` carries the full upper-bound ladder (including empty
        buckets) so external tooling can reconstruct the bucket layout
        without knowing :data:`DEFAULT_BUCKETS`; ``buckets`` stays the
        sparse occupied view keyed by ``repr(bound)``.
        """
        buckets = {
            repr(bound): n
            for bound, n in zip(self.bounds, self.counts)
            if n
        }
        if self.overflow:
            buckets["inf"] = self.overflow
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "bounds": list(self.bounds),
            "buckets": buckets,
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms behind one lock.

    * ``count(name, n)`` — monotonically accumulate;
    * ``gauge(name, v)`` — last-write-wins instantaneous value;
    * ``observe(name, v)`` — add ``v`` to the named histogram.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def count(self, name: str, n: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + n

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(
                    buckets if buckets is not None else DEFAULT_BUCKETS
                )
            hist.observe(value)

    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge_value(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready snapshot of every metric, sorted by name."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: hist.snapshot()
                    for name, hist in sorted(self._histograms.items())
                },
            }
