"""Opt-in profiling hooks: sampling profiler + span-scoped cProfile.

Two complementary tools, both zero-cost unless started:

* :class:`SamplingProfiler` — a daemon thread periodically snapshots the
  target thread's stack via ``sys._current_frames()`` and folds it into
  ``caller;…;callee count`` lines — the *folded stack* format consumed
  directly by ``flamegraph.pl`` / speedscope / inferno.  Sampling never
  instruments the workload, so overhead is bounded by the sampling
  interval regardless of how hot the profiled loops are.
* :class:`SpanScopedProfile` — deterministic ``cProfile`` that is only
  *enabled* while a span with the requested name is on the calling
  thread's span stack (hooked via
  :func:`repro.obs.spans.add_span_hooks`), so ``--profile-span solve``
  prices exactly the solve phase and nothing else.  With no span name it
  profiles its whole extent.

The CLI surfaces both as ``--profile-out FILE`` (plus ``--profile-mode``,
``--profile-span``, ``--profile-interval-ms``) on ``stats`` / ``insert``
/ ``coverage`` / ``sweep``.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
import threading
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Union

from .spans import Span, add_span_hooks, remove_span_hooks

__all__ = ["SamplingProfiler", "SpanScopedProfile", "fold_frame"]


def fold_frame(frame) -> str:
    """Fold a live frame's stack into a ``root;…;leaf`` folded-stack key."""
    parts: List[str] = []
    while frame is not None:
        code = frame.f_code
        parts.append(f"{Path(code.co_filename).stem}.{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Wall-clock sampling profiler producing folded stacks.

    Parameters
    ----------
    interval_s:
        Target seconds between samples (default 5 ms ≈ 200 Hz).
    thread_id:
        Thread to sample (default: the thread calling :meth:`start`).

    Usage::

        prof = SamplingProfiler()
        prof.start()
        ...                      # the workload
        prof.stop()
        prof.write_folded("run.folded")

    The sampler runs on a daemon thread and reads stacks through
    ``sys._current_frames()`` — the GIL guarantees each snapshot is a
    consistent stack, and the workload itself is never instrumented.
    """

    def __init__(
        self, interval_s: float = 0.005, thread_id: Optional[int] = None
    ) -> None:
        if interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval_s = interval_s
        self._thread_id = thread_id
        self._counts: Dict[str, int] = {}
        self._samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        if self._thread_id is None:
            self._thread_id = threading.get_ident()
        self._stop.clear()
        self._started_at = perf_counter()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-sampling-profiler",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        if self._started_at is not None:
            self._elapsed += perf_counter() - self._started_at
            self._started_at = None
        return self

    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self._thread_id)
            if frame is None:  # target thread exited
                break
            key = fold_frame(frame)
            self._counts[key] = self._counts.get(key, 0) + 1
            self._samples += 1

    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        """Total samples taken so far."""
        return self._samples

    @property
    def elapsed_s(self) -> float:
        """Seconds the profiler has been running."""
        if self._started_at is not None:
            return self._elapsed + (perf_counter() - self._started_at)
        return self._elapsed

    def folded(self) -> Dict[str, int]:
        """Folded-stack sample counts (``root;…;leaf`` → samples)."""
        return dict(self._counts)

    def folded_lines(self) -> List[str]:
        """Folded stacks as flamegraph-ready text lines, sorted."""
        return [
            f"{stack} {count}"
            for stack, count in sorted(self._counts.items())
        ]

    def write_folded(self, path: Union[str, Path]) -> Path:
        """Write the folded stacks to ``path`` (one stack per line)."""
        path = Path(path)
        path.write_text(
            "".join(line + "\n" for line in self.folded_lines()),
            encoding="utf-8",
        )
        return path

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False


class SpanScopedProfile:
    """Deterministic ``cProfile`` limited to the extent of named spans.

    With ``span_name`` given, the profiler is enabled when a span of that
    name is entered on the *owning* thread and disabled when the
    outermost such span exits — nested same-named spans keep it enabled
    through a depth counter.  With ``span_name=None`` it profiles its
    whole context-manager extent.

    ``cProfile`` cannot be enabled twice concurrently, so the hook only
    reacts to spans on the thread that created this object.
    """

    def __init__(self, span_name: Optional[str] = None) -> None:
        self.span_name = span_name
        self.profiler = cProfile.Profile()
        self._depth = 0
        self._owner = threading.get_ident()
        self._handle: Optional[tuple] = None
        self._enabled = False

    # ------------------------------------------------------------------
    def _on_enter(self, span: Span) -> None:
        if (
            span.name == self.span_name
            and threading.get_ident() == self._owner
        ):
            self._depth += 1
            if self._depth == 1 and not self._enabled:
                self._enabled = True
                self.profiler.enable()

    def _on_exit(self, span: Span) -> None:
        if (
            span.name == self.span_name
            and threading.get_ident() == self._owner
        ):
            self._depth -= 1
            if self._depth <= 0 and self._enabled:
                self._depth = 0
                self._enabled = False
                self.profiler.disable()

    # ------------------------------------------------------------------
    def __enter__(self) -> "SpanScopedProfile":
        if self.span_name is None:
            self._enabled = True
            self.profiler.enable()
        else:
            self._handle = add_span_hooks(self._on_enter, self._on_exit)
        return self

    def __exit__(self, *exc: object) -> bool:
        if self._handle is not None:
            remove_span_hooks(self._handle)
            self._handle = None
        if self._enabled:
            self._enabled = False
            self.profiler.disable()
        return False

    # ------------------------------------------------------------------
    def write_stats(self, path: Union[str, Path]) -> Path:
        """Dump pstats data to ``path`` (load with :mod:`pstats`)."""
        path = Path(path)
        self.profiler.dump_stats(str(path))
        return path

    def stats(self) -> pstats.Stats:
        """The collected profile as a :class:`pstats.Stats`."""
        return pstats.Stats(self.profiler)
