"""Nested timing spans over ``perf_counter_ns``.

A :class:`Span` measures one region of work.  Spans nest through a
per-thread stack, so a span opened while another is active records its
parent and depth — the recorder can later reassemble the call tree.

Spans are deliberately recorder-agnostic: a span constructed with
``recorder=None`` still times (that is what :func:`repro.obs.timed`
hands out for always-on measurements like experiment runtimes) but emits
nothing on exit.  The *disabled* fast path of :func:`repro.obs.span`
never constructs a ``Span`` at all — it returns the shared
:data:`NULL_SPAN`, whose enter/exit are empty methods.
"""

from __future__ import annotations

import itertools
import threading
from time import perf_counter_ns
from typing import Any, Dict, Optional

__all__ = [
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "current_span",
    "add_span_hooks",
    "remove_span_hooks",
]

#: Process-wide span id source (``next`` on a C iterator is GIL-atomic).
_ids = itertools.count(1)

#: Registered ``(on_enter, on_exit)`` hook pairs.  The list is almost
#: always empty, so the hot path pays one global load and a truthiness
#: check; the span-scoped profiler (:mod:`repro.obs.profile`) installs a
#: pair for its extent.
_hooks: list = []


def add_span_hooks(on_enter, on_exit) -> tuple:
    """Register callbacks invoked with every span at enter/exit time.

    Either callback may be ``None``.  Returns the handle to pass to
    :func:`remove_span_hooks`.  Hooks observe *every* span, including
    unrecorded :func:`repro.obs.timed` ones; exceptions they raise
    propagate to the span's caller, so hooks must be cheap and safe.
    """
    handle = (on_enter, on_exit)
    _hooks.append(handle)
    return handle


def remove_span_hooks(handle: tuple) -> None:
    """Unregister a hook pair returned by :func:`add_span_hooks`."""
    try:
        _hooks.remove(handle)
    except ValueError:
        pass

_stack_local = threading.local()


def _stack() -> list:
    stack = getattr(_stack_local, "spans", None)
    if stack is None:
        stack = _stack_local.spans = []
    return stack


def current_span() -> Optional["Span"]:
    """The innermost active span of the calling thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


class NullSpan:
    """Shared no-op span: the disabled-path return of ``obs.span``."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "NullSpan":
        return self


#: The singleton handed out when no recorder is configured.
NULL_SPAN = NullSpan()


class Span:
    """One timed region of work.

    Use as a context manager::

        with Span("solve", {"circuit": "c17"}, recorder) as sp:
            ...
            sp.set(cost=solution.cost)

    On exit the span reports itself to its recorder (when bound to one).
    Timing uses ``perf_counter_ns``; :attr:`seconds` is available after
    exit (and reads the live clock while still open, so experiment code
    can poll a running span).
    """

    __slots__ = (
        "name",
        "attrs",
        "recorder",
        "span_id",
        "parent_id",
        "depth",
        "start_ns",
        "end_ns",
    )

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        recorder: Optional[object] = None,
    ) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.recorder = recorder
        self.span_id = next(_ids)
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.start_ns = 0
        self.end_ns: Optional[int] = None

    # ------------------------------------------------------------------
    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (chains: ``sp.set(a=1).set(b=2)``)."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds (live while the span is open)."""
        end = self.end_ns if self.end_ns is not None else perf_counter_ns()
        return end - self.start_ns

    @property
    def seconds(self) -> float:
        """Elapsed seconds (live while the span is open)."""
        return self.duration_ns / 1e9

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            self.depth = parent.depth + 1
        stack.append(self)
        if _hooks:
            for on_enter, _ in _hooks:
                if on_enter is not None:
                    on_enter(self)
        self.start_ns = perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.end_ns = perf_counter_ns()
        if _hooks:
            for _, on_exit in _hooks:
                if on_exit is not None:
                    on_exit(self)
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # tolerate out-of-order exits instead of corrupting the stack
            try:
                stack.remove(self)
            except ValueError:
                pass
        recorder = self.recorder
        if recorder is not None:
            recorder._emit_span(self)
        return False
