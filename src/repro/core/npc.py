"""Executable NP-completeness construction: SAT embeds into testability.

The paper's complexity result — optimal test point insertion is NP-complete
for circuits with reconvergent fanout — rests on the fact that in the
*exact* probability model, deciding whether a fault's detection probability
is nonzero already embeds satisfiability (the reconvergent variable stems
create exactly the value-consistency constraints of a CNF formula).  This
module makes that reduction executable:

* :func:`cnf_to_circuit` builds the standard two-rail CNF netlist — one
  reconvergent stem per variable, an OR per clause, a final AND;
* the output's stuck-at-0 fault is excitable **iff** the formula is
  satisfiable, so exact testability analysis of this single fault decides
  SAT (:func:`is_satisfiable_via_testability` demonstrates it with the
  exhaustive fault simulator);
* consequently no polynomial algorithm can plan test points against the
  exact model on general circuits (unless P = NP) — which is why the DP
  restricts itself to fanout-free circuits, where the COP model is exact
  and the structure is a tree.

The test suite verifies the reduction against a brute-force SAT solver on
random small formulas.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..circuit.builder import CircuitBuilder
from ..circuit.netlist import Circuit
from ..sim.fault_sim import FaultSimulator
from ..sim.faults import Fault
from ..sim.patterns import ExhaustiveSource

__all__ = [
    "Cnf",
    "cnf_to_circuit",
    "output_excitation_fault",
    "brute_force_sat",
    "is_satisfiable_via_testability",
    "random_cnf",
]

#: A CNF formula: clauses of nonzero ints, DIMACS-style (−k = ¬x_k).
Cnf = List[List[int]]


def _validate_cnf(cnf: Cnf) -> int:
    if not cnf:
        raise ValueError("formula must have at least one clause")
    n_vars = 0
    for clause in cnf:
        if not clause:
            raise ValueError("empty clause (formula trivially unsatisfiable)")
        for lit in clause:
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            n_vars = max(n_vars, abs(lit))
    return n_vars


def cnf_to_circuit(cnf: Cnf, name: str = "cnf") -> Circuit:
    """Build the two-rail CNF netlist.

    Variable ``k`` becomes primary input ``x{k}`` whose stem fans out to a
    positive rail and (when needed) an inverted rail ``nx{k}`` — the
    reconvergent structure that makes exact analysis hard.  Each clause is
    an OR of its literal rails; the output ``sat`` ANDs all clauses.
    """
    n_vars = _validate_cnf(cnf)
    b = CircuitBuilder(name)
    pos = {k: b.input(f"x{k}") for k in range(1, n_vars + 1)}
    neg = {}
    for clause in cnf:
        for lit in clause:
            if lit < 0 and -lit not in neg:
                neg[-lit] = b.not_(pos[-lit], name=f"nx{-lit}")
    clause_outs = []
    for j, clause in enumerate(cnf):
        rails = [pos[lit] if lit > 0 else neg[-lit] for lit in clause]
        if len(rails) == 1:
            clause_outs.append(b.buf(rails[0], name=f"c{j}"))
        else:
            clause_outs.append(b.or_(*rails, name=f"c{j}"))
    if len(clause_outs) == 1:
        out = b.buf(clause_outs[0], name="sat")
    else:
        out = b.and_(*clause_outs, name="sat")
    b.output(out)
    return b.build()


def output_excitation_fault(circuit: Circuit) -> Fault:
    """The stuck-at-0 fault on the ``sat`` output.

    Its excitation requires the output at 1, i.e. a satisfying assignment;
    since the output is directly observed, excitation equals detection.
    """
    return Fault(circuit.outputs[0], 0)


def brute_force_sat(cnf: Cnf) -> Optional[List[bool]]:
    """Exhaustive SAT check; returns a satisfying assignment or None."""
    n_vars = _validate_cnf(cnf)
    for bits in range(1 << n_vars):
        assignment = [(bits >> k) & 1 == 1 for k in range(n_vars)]
        if all(
            any(
                assignment[abs(lit) - 1] == (lit > 0)
                for lit in clause
            )
            for clause in cnf
        ):
            return assignment
    return None


def is_satisfiable_via_testability(cnf: Cnf) -> bool:
    """Decide SAT by asking the fault simulator about one fault.

    Applies the exhaustive pattern set and reports whether the output
    stuck-at-0 fault of the CNF netlist is detected — which happens iff
    some input pattern drives the output to 1, i.e. iff the formula is
    satisfiable.  (Exponential, of course: the reduction shows *hardness*,
    not an algorithm.)
    """
    circuit = cnf_to_circuit(cnf)
    n = len(circuit.inputs)
    if n > 20:
        raise ValueError("exhaustive testability check limited to 20 variables")
    n_patterns = 1 << n
    stimulus = ExhaustiveSource().generate(circuit.inputs, n_patterns)
    sim = FaultSimulator(circuit)
    result = sim.run(stimulus, n_patterns, faults=[output_excitation_fault(circuit)])
    return result.coverage() == 1.0


def random_cnf(
    n_vars: int, n_clauses: int, seed: int = 0, clause_size: int = 3
) -> Cnf:
    """Seeded uniform random k-CNF (distinct variables within a clause)."""
    if n_vars < clause_size:
        raise ValueError("need at least as many variables as the clause size")
    rng = random.Random(seed)
    cnf: Cnf = []
    for _ in range(n_clauses):
        variables = rng.sample(range(1, n_vars + 1), clause_size)
        cnf.append([v if rng.random() < 0.5 else -v for v in variables])
    return cnf
