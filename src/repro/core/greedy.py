"""Greedy testability-driven test point insertion (the classic baseline).

This is the approach the dynamic program was positioned against: repeatedly
evaluate the circuit's COP profile, propose candidate points near the
failing faults, score each candidate by how many failing faults it fixes
per unit cost, and commit the best one.  It is fast and usually good — and
measurably suboptimal on trees where the DP is exact (experiment T3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..resilience import Budget
from ..sim.faults import Fault, testable_stuck_at_faults
from .incremental import IncrementalEvaluator
from .problem import TestPoint, TestPointType, TPIProblem, TPISolution
from .virtual import VirtualEvaluation, evaluate_placement

__all__ = ["solve_greedy"]


def _fault_site_point(fault: Fault) -> Tuple[str, Optional[Tuple[str, int]]]:
    """The (node, branch) wire a fault lives on."""
    return fault.node, fault.branch


def _candidate_points(
    problem: TPIProblem,
    evaluation: VirtualEvaluation,
    failing: Sequence[Fault],
    placed: Sequence[TestPoint],
    limit: int,
) -> List[TestPoint]:
    """Propose candidate placements targeted at the failing faults.

    Observation points are proposed directly on failing wires (they fix
    propagation); control points are proposed on the most probability-skewed
    nodes inside the fan-in cones of failing sites (they fix excitation and
    side-input sensitization).
    """
    circuit = problem.circuit
    placed_ops: Set[Tuple[str, Optional[Tuple[str, int]]]] = {
        (p.node, p.branch)
        for p in placed
        if p.kind is TestPointType.OBSERVATION
    }
    placed_cps: Set[Tuple[str, Optional[Tuple[str, int]]]] = {
        (p.node, p.branch) for p in placed if p.kind.is_control
    }

    candidates: List[TestPoint] = []
    seen: Set[TestPoint] = set()

    def propose(tp: TestPoint) -> None:
        if tp in seen:
            return
        if tp.kind is TestPointType.OBSERVATION:
            if (tp.node, tp.branch) in placed_ops:
                return
        elif (tp.node, tp.branch) in placed_cps:
            return  # one control point per wire
        seen.add(tp)
        candidates.append(tp)

    # Observation points on the failing wires themselves.
    if problem.observation_allowed:
        for fault in failing:
            node, branch = _fault_site_point(fault)
            propose(TestPoint(node, TestPointType.OBSERVATION, branch=branch))

    # Control points on skewed nodes in the failing fan-in cones.  A single
    # multi-source traversal — per-fault cones overlap heavily, so walking
    # them one by one is quadratic on wide circuits with many failures.
    cone: Set[str] = set(circuit.fanin_cone_union(f.node for f in failing))
    for fault in failing:
        if fault.branch is not None:
            cone.add(fault.branch[0])
    skewed = sorted(
        cone,
        key=lambda n: (-abs(evaluation.stem_post.get(n, 0.5) - 0.5), n),
    )
    control_types = problem.control_types()
    for name in skewed[: max(limit // max(len(control_types), 1), 8)]:
        for kind in control_types:
            propose(TestPoint(name, kind))

    return candidates[: limit * 2]


def solve_greedy(
    problem: TPIProblem,
    faults: Optional[Sequence[Fault]] = None,
    candidate_limit: int = 64,
    max_iterations: int = 200,
    initial_points: Optional[Sequence[TestPoint]] = None,
    budget: Optional[Budget] = None,
    use_incremental: bool = True,
    kernel: Optional[str] = None,
) -> TPISolution:
    """Greedy TPI: commit the best benefit-per-cost candidate each round.

    Parameters
    ----------
    problem:
        The TPI instance (general circuits welcome).
    faults:
        Faults to satisfy (default: the circuit's full stuck-at list).
    candidate_limit:
        Cap on candidates scored per iteration.
    max_iterations:
        Hard stop on the number of committed points.
    initial_points:
        Placement to start from (used as the mop-up stage of the DP
        heuristic); its cost is included in the result.
    budget:
        Optional cooperative budget; the wall clock is checked per
        committed point and per candidate evaluation.
    use_incremental:
        Score candidates with the :class:`IncrementalEvaluator` dirty-cone
        fast path (default).  ``False`` falls back to from-scratch
        ``evaluate_placement`` per candidate — same answers (the
        equivalence tests assert identical solutions), only slower; kept
        as the ground-truth reference for tests and benchmarks.
    kernel:
        Evaluation kernel for the COP passes (``"compiled"``,
        ``"numpy"`` or ``"interp"``); default is the process-wide
        :data:`~repro.sim.compile.DEFAULT_KERNEL`.  With ``"numpy"``
        the incremental candidate scoring also runs its dirty-cone
        deltas on the array engine
        (:class:`~repro.sim.npsim.PlacementDelta`).
    """
    if faults is None:
        faults = testable_stuck_at_faults(problem.circuit)
    points: List[TestPoint] = list(initial_points or [])
    iterations = 0
    evaluations = 0
    feasible = False
    inc = (
        IncrementalEvaluator(problem, points, faults=faults, kernel=kernel)
        if use_incremental
        else None
    )

    heartbeat = obs.Heartbeat("greedy.solve")
    for _ in range(max_iterations):
        iterations += 1
        if budget is not None:
            budget.tick("greedy.iteration")
        heartbeat.beat(
            iterations=iterations,
            points=len(points),
            evaluations=evaluations,
        )
        if inc is not None:
            evaluation = inc.base
            failing = inc.failing_faults()
        else:
            evaluation = evaluate_placement(problem, points, kernel=kernel)
            failing = evaluation.failing_faults(faults)
        if not failing:
            feasible = True
            break
        if problem.max_points is not None and len(points) >= problem.max_points:
            break
        candidates = _candidate_points(
            problem, evaluation, failing, points, candidate_limit
        )
        best: Optional[TestPoint] = None
        best_score = 0.0
        best_key: Tuple = ()
        for cand in candidates:
            evaluations += 1
            if budget is not None:
                budget.tick("greedy.candidate")
            heartbeat.beat(
                iterations=iterations,
                points=len(points),
                evaluations=evaluations,
            )
            if inc is not None:
                fixed = inc.candidate_gain(cand)
            else:
                after = evaluate_placement(problem, points + [cand], kernel=kernel)
                fixed = len(failing) - len(after.failing_faults(faults))
            if fixed <= 0:
                continue
            score = fixed / problem.costs.of(cand.kind)
            key = (score, -problem.costs.of(cand.kind), cand.sort_key())
            if best is None or key > best_key:
                best, best_score, best_key = cand, score, key
        if best is None:
            break  # no candidate helps: give up (infeasible for greedy)
        points.append(best)
        if inc is not None:
            inc.rebase(points)
    else:
        evaluation = (
            inc.base
            if inc is not None
            else evaluate_placement(problem, points, kernel=kernel)
        )
        feasible = evaluation.is_feasible(faults)

    stats = {
        "iterations": float(iterations),
        "evaluations": float(evaluations),
    }
    if inc is not None:
        stats["incremental_nodes"] = float(inc.stats["nodes_recomputed"])
        stats["incremental_deltas"] = float(inc.stats["deltas"])
    return TPISolution(
        points=points,
        cost=problem.costs.total(points),
        feasible=feasible,
        method="greedy",
        stats=stats,
    )
