"""Netlist preparation for test point planning.

The DP (and the regional heuristic built on it) operates on ≤2-input
gates, matching the 1987 setting where synthesized netlists were already
decomposed.  :func:`prepare_for_tpi` normalizes an arbitrary circuit:

* wide symmetric gates become balanced 2-input trees
  (:func:`repro.circuit.transforms.factorize_to_two_input`);
* logic reaching no output is swept away (the DP refuses dead wires,
  since no placement can make an unobservable wire testable).

Planning, virtual evaluation, physical insertion and coverage measurement
must all run on the *prepared* netlist — its wires are the fault universe
the placement protects.
"""

from __future__ import annotations

from ..circuit.netlist import Circuit
from ..circuit.transforms import factorize_to_two_input, sweep_dead_logic

__all__ = ["prepare_for_tpi"]


def prepare_for_tpi(circuit: Circuit) -> Circuit:
    """Return a planning-ready copy: 2-input gates only, no dead logic."""
    prepared = factorize_to_two_input(circuit)
    if prepared.floating_nodes():
        prepared = sweep_dead_logic(prepared)
    prepared.validate()
    return prepared
