"""Fanout-free-region subproblem extraction for general circuits.

Reconvergent fanout makes TPI NP-complete, so general circuits are handled
by decomposing them into fanout-free regions (FFRs, see
:mod:`repro.circuit.analysis`) and running the exact tree DP inside each
region against its *environment*:

* region **leaves** become pseudo primary inputs carrying the current
  global signal probability of the boundary wire;
* the region **root** receives the current global observability of its
  post-control-point line as the DP's environment observability;
* faults on boundary wires (fanout branches, primary-input stems) are
  enforced inside the sink region, so every fault of the circuit is owned
  by exactly one region (except stems of multi-fanout primary inputs,
  which the iterative driver mops up separately).

A placement found on the extracted tree maps back onto the original
circuit: internal tree nodes → stem points, branch leaves → branch points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuit.analysis import FanoutFreeRegion, fanout_free_regions
from ..circuit.netlist import Circuit
from ..resilience import Budget
from ..sim.faults import Fault
from .problem import TestPoint, TPIProblem
from .virtual import VirtualEvaluation

__all__ = [
    "RegionSubproblem",
    "extract_region_subproblem",
    "fault_region_owner",
    "owner_of_fault",
]

_Site = Tuple[str, Optional[Tuple[str, int]]]


@dataclass
class RegionSubproblem:
    """An FFR packaged for the tree DP.

    Attributes
    ----------
    region:
        The source region.
    circuit:
        The extracted tree netlist (root is its only output).
    leaf_probabilities:
        Pseudo-input name → current global probability of the boundary wire.
    root_observability:
        Environment observability of the root's post-CP line.
    enforced:
        Per-node fault-polarity enforcement overrides for the DP.
    site_of:
        Tree node name → ``(node, branch)`` placement site in the original
        circuit.
    """

    region: FanoutFreeRegion
    circuit: Circuit
    leaf_probabilities: Dict[str, float] = field(default_factory=dict)
    root_observability: float = 1.0
    enforced: Dict[str, Tuple[bool, bool]] = field(default_factory=dict)
    site_of: Dict[str, _Site] = field(default_factory=dict)

    def map_point(self, tree_point: TestPoint) -> TestPoint:
        """Translate a DP placement on the tree back to the real circuit."""
        node, branch = self.site_of[tree_point.node]
        return TestPoint(node, tree_point.kind, branch=branch)


def extract_region_subproblem(
    problem: TPIProblem,
    region: FanoutFreeRegion,
    evaluation: VirtualEvaluation,
    budget: Optional[Budget] = None,
) -> RegionSubproblem:
    """Build the tree subproblem of ``region`` under the current placement.

    ``evaluation`` must describe the circuit with all points *outside* the
    region applied (and the region's own previous points removed), so leaf
    probabilities and root observability reflect the environment the DP
    plans against.  ``budget``'s wall clock, when given, is checked at the
    per-member loop boundary.
    """
    if budget is not None:
        budget.tick("regions.extract")
    circuit = problem.circuit
    tree = Circuit(f"{circuit.name}__ffr_{region.root}")
    site_of: Dict[str, _Site] = {}
    leaf_probs: Dict[str, float] = {}
    enforced: Dict[str, Tuple[bool, bool]] = {}

    members = region.members
    order = [n for n in circuit.topological_order() if n in members]

    def leaf_for(driver: str, sink: str, pin: int) -> str:
        if circuit.fanout_count(driver) > 1:
            name = f"{driver}@{sink}.{pin}"
            site: _Site = (driver, (sink, pin))
        else:
            name = driver
            site = (driver, None)
        if name not in tree:
            tree.add_input(name)
            site_of[name] = site
            leaf_probs[name] = evaluation.stem_post[driver]
            enforced[name] = (True, True)
        return name

    for name in order:
        if budget is not None:
            budget.tick("regions.extract")
        node = circuit.node(name)
        fanins = []
        for pin, fi in enumerate(node.fanins):
            if fi in members:
                fanins.append(fi)
            else:
                fanins.append(leaf_for(fi, name, pin))
        tree.add_gate(name, node.gate_type, fanins)
        site_of[name] = (name, None)
    tree.mark_output(region.root)
    tree.validate()

    root_obs = evaluation.stem_post_obs.get(region.root, 1.0)
    return RegionSubproblem(
        region=region,
        circuit=tree,
        leaf_probabilities=leaf_probs,
        root_observability=root_obs,
        enforced=enforced,
        site_of=site_of,
    )


def fault_region_owner(
    circuit: Circuit, regions: Optional[List[FanoutFreeRegion]] = None
) -> Dict[_Site, int]:
    """Map every fault wire to the index of the region that owns it.

    Gate stems belong to their own region; fanout branches and fanout-1
    primary-input stems belong to the sink's region.  Stems of multi-fanout
    primary inputs have no owner (absent from the map).
    """
    if regions is None:
        regions = fanout_free_regions(circuit)
    member_region: Dict[str, int] = {}
    for idx, region in enumerate(regions):
        for m in region.members:
            member_region[m] = idx

    owner: Dict[_Site, int] = {}
    for idx, region in enumerate(regions):
        for m in region.members:
            owner[(m, None)] = idx
            node = circuit.node(m)
            for pin, fi in enumerate(node.fanins):
                if fi in region.members:
                    continue
                if circuit.fanout_count(fi) > 1:
                    owner[(fi, (m, pin))] = idx
                elif circuit.node(fi).is_input:
                    owner[(fi, None)] = idx
    return owner


def owner_of_fault(
    fault: Fault, owner: Dict[_Site, int]
) -> Optional[int]:
    """Region index owning ``fault``'s wire (None for orphan PI stems)."""
    return owner.get((fault.node, fault.branch))
