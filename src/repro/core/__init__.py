"""The paper's contribution: dynamic-programming test point insertion.

Public surface:

* :mod:`~repro.core.problem` — the TPI optimization problem, points, costs;
* :mod:`~repro.core.dp` — the exact tree DP (the headline algorithm);
* :mod:`~repro.core.heuristic` — DP-on-regions for general circuits;
* :mod:`~repro.core.greedy` / :mod:`~repro.core.random_placement` /
  :mod:`~repro.core.exhaustive` — baselines and the optimality oracle;
* :mod:`~repro.core.cascade` — budget-aware solver degradation
  (``exhaustive → dp → greedy → random``);
* :mod:`~repro.core.virtual` — analytical placement evaluation;
* :mod:`~repro.core.incremental` — dirty-cone incremental evaluation
  (the solvers' fast path; bit-identical to the virtual evaluator);
* :mod:`~repro.core.test_points` — physical hardware insertion;
* :mod:`~repro.core.evaluate` — end-to-end measured-coverage pipeline;
* :mod:`~repro.core.npc` — the executable NP-completeness reduction.
"""

from .cascade import DEFAULT_CASCADE, SOLVER_CASCADE, solve_with_fallback
from .dp import DPSolver, quantized_tree_check, solve_tree
from .evaluate import CoverageReport, evaluate_solution, measure_coverage
from .exhaustive import solve_exhaustive
from .greedy import solve_greedy
from .heuristic import solve_dp_heuristic
from .incremental import IncrementalEvaluator
from .npc import (
    brute_force_sat,
    cnf_to_circuit,
    is_satisfiable_via_testability,
    output_excitation_fault,
    random_cnf,
)
from .problem import (
    CONTROL_TYPES,
    TestPoint,
    TestPointCosts,
    TestPointType,
    TPIProblem,
    TPISolution,
    control_observability_factor,
    control_probability_transform,
)
from .phases import (
    PhasePlan,
    evaluate_phase,
    measure_phase_coverage,
    phase_escape_probabilities,
    schedule_phases,
)
from .prepare import prepare_for_tpi
from .quantize import ProbabilityGrid
from .random_placement import solve_random
from .regions import (
    RegionSubproblem,
    extract_region_subproblem,
    fault_region_owner,
    owner_of_fault,
)
from .test_points import InsertionResult, apply_test_points
from .virtual import VirtualEvaluation, evaluate_placement, split_placement

__all__ = [
    "TestPointType",
    "TestPoint",
    "TestPointCosts",
    "TPIProblem",
    "TPISolution",
    "CONTROL_TYPES",
    "control_probability_transform",
    "control_observability_factor",
    "ProbabilityGrid",
    "prepare_for_tpi",
    "PhasePlan",
    "evaluate_phase",
    "phase_escape_probabilities",
    "schedule_phases",
    "measure_phase_coverage",
    "DPSolver",
    "solve_tree",
    "quantized_tree_check",
    "solve_dp_heuristic",
    "solve_greedy",
    "solve_random",
    "solve_exhaustive",
    "solve_with_fallback",
    "SOLVER_CASCADE",
    "DEFAULT_CASCADE",
    "VirtualEvaluation",
    "evaluate_placement",
    "split_placement",
    "IncrementalEvaluator",
    "InsertionResult",
    "apply_test_points",
    "CoverageReport",
    "measure_coverage",
    "evaluate_solution",
    "RegionSubproblem",
    "extract_region_subproblem",
    "fault_region_owner",
    "owner_of_fault",
    "cnf_to_circuit",
    "output_excitation_fault",
    "brute_force_sat",
    "is_satisfiable_via_testability",
    "random_cnf",
]
