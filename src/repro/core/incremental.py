"""Incremental placement evaluation: re-propagate only the dirty region.

:func:`repro.core.virtual.evaluate_placement` recomputes both COP passes
over the whole circuit for every candidate placement — thousands of
from-scratch O(|C|) evaluations inside the greedy candidate loop, the
region re-planning loop, and the phase scheduler.  This module provides
the same numbers at a fraction of the cost by caching the passes for a
*base* placement and, when a placement differing at a few sites is
evaluated, re-propagating:

* **controllability** forward through the fanout cone of each dirty site
  only, stopping early the moment a recomputed value equals the cached
  one (exact float equality — downstream values are then provably
  identical);
* **observability** backward through the affected fan-in region: sites
  whose point set changed, plus the drivers of any gate whose input
  probabilities moved (their side-input sensitization shifted).

Because every recomputed value uses the same formulas in the same order
as the full evaluator, and untouched values are carried over verbatim,
the incremental result is **bit-identical** to ``evaluate_placement`` —
the property tests assert exact equality, so the from-scratch evaluator
remains the single ground-truth arbiter while the solvers run on this
fast path.

The :meth:`IncrementalEvaluator.candidate_gain` entry point additionally
avoids materializing a :class:`VirtualEvaluation` at all: only faults on
wires whose excitation or observability changed can change feasibility
status, so scoring a candidate is O(dirty region + affected faults)
instead of O(|C| + |F|).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..circuit.gates import (
    output_probability,
    side_input_sensitization_probability,
)
from ..sim.faults import Fault, all_stuck_at_faults
from .problem import (
    TestPoint,
    TestPointType,
    TPIProblem,
    control_observability_factor,
    control_probability_transform,
)
from .virtual import VirtualEvaluation, evaluate_placement, split_placement

__all__ = ["IncrementalEvaluator"]

_BranchKey = Tuple[str, str, int]
#: Per-site point summary: (control kind or None, observed?).
_SiteState = Tuple[Optional[TestPointType], bool]


def _site_states(
    points: Sequence[TestPoint],
) -> Tuple[Dict[str, _SiteState], Dict[_BranchKey, _SiteState]]:
    """Collapse a placement to per-site (control, observed) summaries."""
    stem_points, branch_points = split_placement(points)
    stems: Dict[str, _SiteState] = {}
    branches: Dict[_BranchKey, _SiteState] = {}
    for node, tps in stem_points.items():
        stems[node] = (_control_of(tps), _observed(tps))
    for key, tps in branch_points.items():
        branches[key] = (_control_of(tps), _observed(tps))
    return stems, branches


def _control_of(tps: Sequence[TestPoint]) -> Optional[TestPointType]:
    for t in tps:
        if t.kind.is_control:
            return t.kind
    return None


def _observed(tps: Sequence[TestPoint]) -> bool:
    return any(t.kind is TestPointType.OBSERVATION for t in tps)


_NO_POINT: _SiteState = (None, False)


def _combine(contributions: List[float]) -> float:
    escape = 1.0
    for c in contributions:
        escape *= 1.0 - c
    return 1.0 - escape


class IncrementalEvaluator:
    """Cached COP passes for a base placement, with fast delta evaluation.

    Parameters
    ----------
    problem:
        The TPI instance (the circuit is never mutated).
    base_points:
        The placement the cache is built for.  :meth:`rebase` moves it.
    faults:
        Fault list used by the failing-fault bookkeeping (default: the
        circuit's full stuck-at list).  Only relevant for
        :meth:`failing_faults` / :meth:`candidate_gain`.
    """

    def __init__(
        self,
        problem: TPIProblem,
        base_points: Sequence[TestPoint] = (),
        faults: Optional[Sequence[Fault]] = None,
        kernel: Optional[str] = None,
        guard=None,
    ) -> None:
        self.problem = problem
        #: Optional explicit shadow-verification guard; an ambient
        #: :class:`repro.verify.GuardedSession` applies when ``None``.
        self._guard = guard
        # Runtime-lazy: repro.verify imports this module.
        from ..verify.guard import active_guard

        self._active_guard = active_guard
        #: Kernel mode for the from-scratch base passes (``rebase``) and,
        #: when the backend offers one, for the delta re-propagation: the
        #: numpy backend runs the dirty-cone sweeps as level-synchronous
        #: array subsets (:class:`repro.sim.npsim.PlacementDelta`) while
        #: the interpreted heap walk stays the shadow-sampled arbiter.
        #: Other kernels interpret the deltas — they touch only the dirty
        #: region, and the early-stop compares against base values every
        #: backend reproduces bit-identically.
        self.kernel = kernel
        self.circuit = problem.circuit
        circuit = self.circuit
        # Runtime-lazy for the same import-cycle reason as the guard.
        from ..sim.backend import get_backend

        self._np_delta = get_backend(kernel).placement_delta_engine(circuit)
        self._topo = circuit.topological_order()
        self._level = circuit.levels()
        self._node = {name: circuit.node(name) for name in self._topo}
        self._fanouts = {name: circuit.fanouts(name) for name in self._topo}
        self._out_set = set(circuit.outputs)
        if faults is None:
            faults = all_stuck_at_faults(circuit)
        self._faults = list(faults)
        # Wire → faults index (stem wires by node, branch wires by key).
        self._stem_faults: Dict[str, List[Fault]] = {}
        self._branch_faults: Dict[_BranchKey, List[Fault]] = {}
        for f in self._faults:
            if f.branch is None:
                self._stem_faults.setdefault(f.node, []).append(f)
            else:
                key = (f.node, f.branch[0], f.branch[1])
                self._branch_faults.setdefault(key, []).append(f)
        #: Cumulative statistics (deltas evaluated, nodes re-propagated,
        #: and what a from-scratch pass would have cost) — the speedup
        #: numerator/denominator of the perf benchmarks.
        self.stats: Dict[str, int] = {
            "deltas": 0,
            "rebases": 0,
            "nodes_recomputed": 0,
            "nodes_total": len(self._topo),
        }
        self.rebase(base_points)

    # ------------------------------------------------------------------
    # Base management
    # ------------------------------------------------------------------
    def rebase(self, points: Sequence[TestPoint]) -> VirtualEvaluation:
        """Recompute the cached base evaluation for ``points`` (full pass)."""
        self.stats["rebases"] += 1
        self.base_points = list(points)
        self.base = evaluate_placement(self.problem, points, kernel=self.kernel)
        self._base_stems, self._base_branches = _site_states(points)
        if self._np_delta is not None:
            self._np_delta.rebase(
                self.base,
                self._base_stems,
                self._base_branches,
                control_observability_factor,
            )
        theta = self.problem.threshold - 1e-12
        self._failing: Set[Fault] = {
            f
            for f in self._faults
            if self.base.fault_detection(f) < theta
        }
        return self.base

    def failing_faults(self) -> List[Fault]:
        """Failing faults of the base placement (cached, base fault list)."""
        return [f for f in self._faults if f in self._failing]

    # ------------------------------------------------------------------
    # Delta machinery
    # ------------------------------------------------------------------
    def _diff_sites(
        self, points: Sequence[TestPoint]
    ) -> Tuple[Dict[str, _SiteState], Dict[_BranchKey, _SiteState]]:
        """Sites where ``points`` differs from the base placement."""
        stems, branches = _site_states(points)
        stem_diff: Dict[str, _SiteState] = {}
        for site in stems.keys() | self._base_stems.keys():
            new = stems.get(site, _NO_POINT)
            if new != self._base_stems.get(site, _NO_POINT):
                stem_diff[site] = new
        branch_diff: Dict[_BranchKey, _SiteState] = {}
        for key in branches.keys() | self._base_branches.keys():
            new = branches.get(key, _NO_POINT)
            if new != self._base_branches.get(key, _NO_POINT):
                branch_diff[key] = new
        return stem_diff, branch_diff

    def _delta(
        self,
        stem_diff: Dict[str, _SiteState],
        branch_diff: Dict[_BranchKey, _SiteState],
    ) -> Tuple[
        Dict[str, float],
        Dict[str, float],
        Dict[_BranchKey, float],
        Dict[_BranchKey, float],
        Dict[str, float],
        Dict[_BranchKey, float],
        Dict[str, float],
    ]:
        """Re-propagate both passes from the dirty sites.

        Returns patch dictionaries (missing key = base value unchanged)
        for ``stem_pre``, ``stem_post``, ``branch_pre``, ``branch_post``,
        ``wire_obs``, ``branch_obs`` and ``stem_post_obs``.  Dispatches to
        the backend's vectorized delta engine when one exists, shadowing
        a guard-sampled fraction against the interpreted walk.
        """
        if self._np_delta is None:
            return self._delta_interp(stem_diff, branch_diff)
        patches, recomputed = self._np_delta.delta(
            stem_diff,
            branch_diff,
            control_probability_transform,
            control_observability_factor,
        )
        self.stats["deltas"] += 1
        self.stats["nodes_recomputed"] += recomputed
        guard = self._active_guard(self._guard)
        if guard is not None and guard.should_check():
            self._shadow_delta_check(guard, stem_diff, branch_diff, patches)
        return patches

    def _shadow_delta_check(
        self,
        guard,
        stem_diff: Dict[str, _SiteState],
        branch_diff: Dict[_BranchKey, _SiteState],
        patches,
    ) -> None:
        """Compare one vectorized delta against the interpreted walk."""
        from ..verify.bundle import point_to_payload, problem_to_payload

        saved = dict(self.stats)
        try:
            expected = self._delta_interp(stem_diff, branch_diff)
        finally:
            self.stats.clear()
            self.stats.update(saved)
        names = (
            "stem_pre", "stem_post", "branch_pre", "branch_post",
            "wire_obs", "branch_obs", "stem_post_obs",
        )
        guard.confirm(
            "incremental.delta",
            expected=dict(zip(names, expected)),
            actual=dict(zip(names, patches)),
            circuit=self.circuit,
            context={
                "problem": problem_to_payload(self.problem),
                "base_points": [point_to_payload(p) for p in self.base_points],
                "stem_diff": {
                    site: [state[0].name if state[0] else None, state[1]]
                    for site, state in sorted(stem_diff.items())
                },
                "branch_diff": {
                    repr(key): [state[0].name if state[0] else None, state[1]]
                    for key, state in sorted(branch_diff.items())
                },
                "kernel": self.kernel,
            },
            message=(
                "vectorized incremental delta disagrees with the "
                "interpreted dirty-cone walk"
            ),
        )

    def _delta_interp(
        self,
        stem_diff: Dict[str, _SiteState],
        branch_diff: Dict[_BranchKey, _SiteState],
    ):
        """The interpreted dirty-cone walk (ground-truth delta arbiter)."""
        base = self.base
        level = self._level
        recomputed = 0

        def stem_state(site: str) -> _SiteState:
            state = stem_diff.get(site)
            if state is None:
                state = self._base_stems.get(site, _NO_POINT)
            return state

        def branch_state(key: _BranchKey) -> _SiteState:
            state = branch_diff.get(key)
            if state is None:
                state = self._base_branches.get(key, _NO_POINT)
            return state

        # ---------------------------------------------------- forward
        stem_pre: Dict[str, float] = {}
        stem_post: Dict[str, float] = {}
        branch_pre: Dict[_BranchKey, float] = {}
        branch_post: Dict[_BranchKey, float] = {}

        def pin_probability(sink: str, pin: int, driver: str) -> float:
            key = (driver, sink, pin)
            patched = branch_post.get(key)
            if patched is not None:
                return patched
            return base.branch_post[key]

        # Seed with every forward-relevant dirty site, then run an
        # event-driven level-ordered sweep over the fanout cones.
        pending: Set[str] = set()
        heap: List[Tuple[int, str]] = []
        for site, state in stem_diff.items():
            if state[0] is not None or self._base_stems.get(site, _NO_POINT)[0] is not None:
                if site not in pending:
                    pending.add(site)
                    heapq.heappush(heap, (level[site], site))
        for key, state in branch_diff.items():
            if state[0] is not None or self._base_branches.get(key, _NO_POINT)[0] is not None:
                driver = key[0]
                if driver not in pending:
                    pending.add(driver)
                    heapq.heappush(heap, (level[driver], driver))

        while heap:
            _lvl, name = heapq.heappop(heap)
            pending.discard(name)
            recomputed += 1
            node = self._node[name]
            if node.is_input:
                p = self.problem.input_probability(name)
            else:
                p = output_probability(
                    node.gate_type,
                    [
                        pin_probability(name, pin, fi)
                        for pin, fi in enumerate(node.fanins)
                    ],
                )
            if p != base.stem_pre[name]:
                stem_pre[name] = p
            ctrl = stem_state(name)[0]
            post = control_probability_transform(ctrl, p) if ctrl else p
            if post != base.stem_post[name]:
                stem_post[name] = post
            for sink, pin in self._fanouts[name]:
                key = (name, sink, pin)
                bctrl = branch_state(key)[0]
                bpost = (
                    control_probability_transform(bctrl, post)
                    if bctrl
                    else post
                )
                if post != base.branch_pre[key]:
                    branch_pre[key] = post
                if bpost != base.branch_post[key]:
                    branch_post[key] = bpost
                    if sink not in pending:
                        pending.add(sink)
                        heapq.heappush(heap, (level[sink], sink))

        # --------------------------------------------------- backward
        wire_obs: Dict[str, float] = {}
        branch_obs: Dict[_BranchKey, float] = {}
        stem_post_obs: Dict[str, float] = {}

        def sink_obs(name: str) -> float:
            patched = wire_obs.get(name)
            if patched is not None:
                return patched
            return base.wire_obs[name]

        # Seeds: every dirty site's node, plus all drivers of any gate
        # whose input probabilities moved (their sensitization changed),
        # plus the driver of every node whose own probability changed
        # (covers single-fanin sinks where the side-product is empty but
        # branch_pre moved — harmless over-approximation otherwise).
        bpending: Set[str] = set()
        bheap: List[Tuple[int, str]] = []

        def bseed(name: str) -> None:
            if name not in bpending:
                bpending.add(name)
                heapq.heappush(bheap, (-level[name], name))

        for site in stem_diff:
            bseed(site)
        for key in branch_diff:
            bseed(key[0])
        for key in branch_post:
            sink = key[1]
            for fi in self._node[sink].fanins:
                bseed(fi)

        while bheap:
            _neg, name = heapq.heappop(bheap)
            bpending.discard(name)
            recomputed += 1
            post_contribs: List[float] = []
            if name in self._out_set:
                post_contribs.append(1.0)
            for sink, pin in self._fanouts[name]:
                key = (name, sink, pin)
                sink_node = self._node[sink]
                side_probs = [
                    pin_probability(sink, p, fi)
                    for p, fi in enumerate(sink_node.fanins)
                    if p != pin
                ]
                sens = side_input_sensitization_probability(
                    sink_node.gate_type, side_probs
                )
                pin_obs = sink_obs(sink) * sens
                bctrl, bobserved = branch_state(key)
                factor = control_observability_factor(bctrl) if bctrl else 1.0
                contribs = [factor * pin_obs]
                if bobserved:
                    contribs.append(1.0)
                b_obs = _combine(contribs)
                if b_obs != base.branch_obs[key]:
                    branch_obs[key] = b_obs
                post_contribs.append(b_obs)
            post = _combine(post_contribs) if post_contribs else 0.0
            if post != base.stem_post_obs[name]:
                stem_post_obs[name] = post
            ctrl, observed = stem_state(name)
            factor = control_observability_factor(ctrl) if ctrl else 1.0
            contribs = [factor * post]
            if observed:
                contribs.append(1.0)
            w_obs = _combine(contribs)
            if w_obs != base.wire_obs[name]:
                wire_obs[name] = w_obs
                for fi in self._node[name].fanins:
                    bseed(fi)

        self.stats["deltas"] += 1
        self.stats["nodes_recomputed"] += recomputed
        return (
            stem_pre,
            stem_post,
            branch_pre,
            branch_post,
            wire_obs,
            branch_obs,
            stem_post_obs,
        )

    # ------------------------------------------------------------------
    # Public evaluation API
    # ------------------------------------------------------------------
    def evaluate(self, points: Sequence[TestPoint]) -> VirtualEvaluation:
        """Evaluate an arbitrary placement, reusing the cached base passes.

        The result is bit-identical to
        ``evaluate_placement(problem, points)``; cost scales with the
        dirty region between ``points`` and the base placement.
        """
        stem_diff, branch_diff = self._diff_sites(points)
        if not stem_diff and not branch_diff:
            return VirtualEvaluation(
                problem=self.problem,
                points=sorted(points),
                stem_pre=dict(self.base.stem_pre),
                stem_post=dict(self.base.stem_post),
                wire_obs=dict(self.base.wire_obs),
                branch_pre=dict(self.base.branch_pre),
                branch_post=dict(self.base.branch_post),
                branch_obs=dict(self.base.branch_obs),
                stem_post_obs=dict(self.base.stem_post_obs),
            )
        (
            stem_pre,
            stem_post,
            branch_pre,
            branch_post,
            wire_obs,
            branch_obs,
            stem_post_obs,
        ) = self._delta(stem_diff, branch_diff)

        def merged(base_dict, patch):
            if not patch:
                return dict(base_dict)
            out = dict(base_dict)
            out.update(patch)
            return out

        result = VirtualEvaluation(
            problem=self.problem,
            points=sorted(points),
            stem_pre=merged(self.base.stem_pre, stem_pre),
            stem_post=merged(self.base.stem_post, stem_post),
            wire_obs=merged(self.base.wire_obs, wire_obs),
            branch_pre=merged(self.base.branch_pre, branch_pre),
            branch_post=merged(self.base.branch_post, branch_post),
            branch_obs=merged(self.base.branch_obs, branch_obs),
            stem_post_obs=merged(self.base.stem_post_obs, stem_post_obs),
        )
        guard = self._active_guard(self._guard)
        if guard is not None and guard.should_check():
            self._shadow_check(guard, points, result)
        return result

    def _shadow_check(
        self,
        guard,
        points: Sequence[TestPoint],
        result: VirtualEvaluation,
    ) -> None:
        """Compare one delta evaluation against a from-scratch full pass."""
        from ..verify.bundle import point_to_payload, problem_to_payload

        arbiter = evaluate_placement(self.problem, points, kernel="interp")

        def payload(ev: VirtualEvaluation) -> dict:
            return {
                "stem_pre": ev.stem_pre,
                "stem_post": ev.stem_post,
                "wire_obs": ev.wire_obs,
                "branch_pre": ev.branch_pre,
                "branch_post": ev.branch_post,
                "branch_obs": ev.branch_obs,
                "stem_post_obs": ev.stem_post_obs,
            }

        guard.confirm(
            "incremental.evaluate",
            expected=payload(arbiter),
            actual=payload(result),
            circuit=self.circuit,
            context={
                "problem": problem_to_payload(self.problem),
                "base_points": [point_to_payload(p) for p in self.base_points],
                "points": [point_to_payload(p) for p in sorted(points)],
                "kernel": self.kernel,
            },
            message=(
                "incremental delta evaluation disagrees with the "
                "from-scratch interpreted pass"
            ),
        )

    def candidate_gain(self, candidate: TestPoint) -> int:
        """Net failing-fault reduction of adding ``candidate`` to the base.

        Equals ``len(failing(base)) - len(failing(base + [candidate]))``
        over this evaluator's fault list, computed by re-checking only the
        faults that live on wires whose excitation or observability
        actually changed.
        """
        stem_diff: Dict[str, _SiteState] = {}
        branch_diff: Dict[_BranchKey, _SiteState] = {}
        if candidate.branch is None:
            old = self._base_stems.get(candidate.node, _NO_POINT)
        else:
            key = (candidate.node, candidate.branch[0], candidate.branch[1])
            old = self._base_branches.get(key, _NO_POINT)
        if candidate.kind.is_control:
            if old[0] is not None:
                raise ValueError(
                    f"multiple control points on one wire at {candidate.node!r}"
                )
            new = (candidate.kind, old[1])
        else:
            new = (old[0], True)
        if new == old:
            return 0
        if candidate.branch is None:
            stem_diff[candidate.node] = new
        else:
            branch_diff[key] = new
        (
            stem_pre,
            _stem_post,
            branch_pre,
            _branch_post,
            wire_obs,
            branch_obs,
            _stem_post_obs,
        ) = self._delta(stem_diff, branch_diff)
        theta = self.problem.threshold - 1e-12
        base = self.base
        gain = 0
        touched_stems = stem_pre.keys() | wire_obs.keys()
        for site in touched_stems:
            faults = self._stem_faults.get(site)
            if not faults:
                continue
            p = stem_pre.get(site, base.stem_pre[site])
            o = wire_obs.get(site, base.wire_obs[site])
            for f in faults:
                excitation = p if f.value == 0 else (1.0 - p)
                fails_now = excitation * o < theta
                failed_before = f in self._failing
                if failed_before and not fails_now:
                    gain += 1
                elif not failed_before and fails_now:
                    gain -= 1
        touched_branches = branch_pre.keys() | branch_obs.keys()
        for key in touched_branches:
            faults = self._branch_faults.get(key)
            if not faults:
                continue
            p = branch_pre.get(key, base.branch_pre[key])
            o = branch_obs.get(key, base.branch_obs[key])
            for f in faults:
                excitation = p if f.value == 0 else (1.0 - p)
                fails_now = excitation * o < theta
                failed_before = f in self._failing
                if failed_before and not fails_now:
                    gain += 1
                elif not failed_before and fails_now:
                    gain -= 1
        return gain

    def commit(self, candidate: TestPoint) -> VirtualEvaluation:
        """Append ``candidate`` to the base placement and rebase."""
        result = self.rebase(self.base_points + [candidate])
        obs.count("incremental.commits")
        return result
