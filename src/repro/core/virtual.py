"""Virtual (analytical) evaluation of a test-point placement.

Solvers must compare thousands of candidate placements, so placements are
evaluated *virtually*: the COP probability passes are run with the
test-point semantics of :mod:`repro.core.problem` layered in, without ever
rewriting the netlist.  The same evaluator is the single arbiter of
feasibility for the DP, every baseline, and the verification tests — all
solvers optimize exactly the objective this module measures.

Wire model per connection ``d → (s, pin)`` (see problem.py for semantics)::

    [gate d] --W_d--[stem CP?]--+--B(d,s,0)--[branch CP?]--> pin 0 of s0
              ^OP taps here     +--B(d,s,1)--[branch CP?]--> pin 1 of s1
                                   ^branch OP taps here

Stem faults live on ``W_d`` (pre stem-CP); branch faults on the branch
wires (post stem-CP, pre branch-CP).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..circuit.gates import (
    output_probability,
    side_input_sensitization_probability,
)
from ..circuit.netlist import Circuit
from ..sim.backend import get_backend
from ..sim.faults import Fault, all_stuck_at_faults
from .problem import (
    TestPoint,
    TestPointType,
    TPIProblem,
    control_observability_factor,
    control_probability_transform,
)

__all__ = [
    "VirtualEvaluation",
    "evaluate_placement",
    "placement_site_state",
    "split_placement",
]

_BranchKey = Tuple[str, str, int]


def split_placement(
    points: Sequence[TestPoint],
) -> Tuple[Dict[str, List[TestPoint]], Dict[_BranchKey, List[TestPoint]]]:
    """Group placements by stem site and by branch site.

    Raises ``ValueError`` when a site carries more than one control point
    (physically a wire has at most one re-drive).
    """
    stem: Dict[str, List[TestPoint]] = {}
    branch: Dict[_BranchKey, List[TestPoint]] = {}
    for tp in points:
        if tp.branch is None:
            stem.setdefault(tp.node, []).append(tp)
        else:
            key = (tp.node, tp.branch[0], tp.branch[1])
            branch.setdefault(key, []).append(tp)
    for site, tps in list(stem.items()) + list(branch.items()):
        controls = [t for t in tps if t.kind.is_control]
        if len(controls) > 1:
            raise ValueError(f"multiple control points on one wire at {site!r}")
    return stem, branch


def _site_control(tps: Optional[List[TestPoint]]) -> Optional[TestPointType]:
    if not tps:
        return None
    for t in tps:
        if t.kind.is_control:
            return t.kind
    return None


def _site_observed(tps: Optional[List[TestPoint]]) -> bool:
    if not tps:
        return False
    return any(t.kind is TestPointType.OBSERVATION for t in tps)


def placement_site_state(
    points: Sequence[TestPoint],
) -> Tuple[
    Dict[str, TestPointType],
    Dict[_BranchKey, TestPointType],
    Set[str],
    Set[_BranchKey],
]:
    """Collapse a placement to the site-state form backend runners take.

    Returns ``(stem_controls, branch_controls, stem_observed,
    branch_observed)`` — control kind per controlled site plus observed
    site sets.  This is the calling convention of every placement
    runner (compiled and numpy): the placement travels as data, so one
    compiled kernel / one array plan serves every placement on the
    circuit.
    """
    stem_points, branch_points = split_placement(points)
    sctl: Dict[str, TestPointType] = {}
    sobs: Set[str] = set()
    for site, tps in stem_points.items():
        ctrl = _site_control(tps)
        if ctrl:
            sctl[site] = ctrl
        if _site_observed(tps):
            sobs.add(site)
    bctl: Dict[_BranchKey, TestPointType] = {}
    bobs: Set[_BranchKey] = set()
    for key, tps in branch_points.items():
        ctrl = _site_control(tps)
        if ctrl:
            bctl[key] = ctrl
        if _site_observed(tps):
            bobs.add(key)
    return sctl, bctl, sobs, bobs


@dataclass
class VirtualEvaluation:
    """Analytical testability of a circuit with a virtual placement applied.

    Attributes
    ----------
    problem:
        The TPI instance evaluated against.
    points:
        The placement that was applied.
    stem_pre:
        ``p`` on each node's output wire, *before* any stem control point
        (stem-fault excitation probabilities).
    stem_post:
        ``p`` downstream of the stem control point (what sinks see, prior
        to branch control points).
    wire_obs:
        Observability of each node's pre-CP output wire (stem faults).
    branch_pre:
        ``p`` on each branch wire (branch-fault excitation).
    branch_post:
        ``p`` downstream of any branch control point (what the sink pin
        actually sees; equals ``branch_pre`` on uncontrolled branches).
    branch_obs:
        Observability of each branch wire (branch faults).
    """

    problem: TPIProblem
    points: List[TestPoint]
    stem_pre: Dict[str, float] = field(default_factory=dict)
    stem_post: Dict[str, float] = field(default_factory=dict)
    wire_obs: Dict[str, float] = field(default_factory=dict)
    branch_pre: Dict[_BranchKey, float] = field(default_factory=dict)
    branch_post: Dict[_BranchKey, float] = field(default_factory=dict)
    branch_obs: Dict[_BranchKey, float] = field(default_factory=dict)
    stem_post_obs: Dict[str, float] = field(default_factory=dict)

    def fault_detection(self, fault: Fault) -> float:
        """COP detection probability of ``fault`` under the placement."""
        if fault.branch is None:
            p = self.stem_pre[fault.node]
            obs = self.wire_obs[fault.node]
        else:
            key = (fault.node, fault.branch[0], fault.branch[1])
            p = self.branch_pre[key]
            obs = self.branch_obs[key]
        excitation = p if fault.value == 0 else (1.0 - p)
        return excitation * obs

    def detection_probabilities(
        self, faults: Optional[Sequence[Fault]] = None
    ) -> Dict[Fault, float]:
        """Detection probability for each fault (default: full fault list)."""
        if faults is None:
            faults = all_stuck_at_faults(self.problem.circuit)
        return {f: self.fault_detection(f) for f in faults}

    def failing_faults(
        self, faults: Optional[Sequence[Fault]] = None
    ) -> List[Fault]:
        """Faults whose detection probability misses the threshold θ."""
        theta = self.problem.threshold
        probs = self.detection_probabilities(faults)
        return [f for f, d in probs.items() if d < theta - 1e-12]

    def is_feasible(self, faults: Optional[Sequence[Fault]] = None) -> bool:
        """True when every fault meets θ under the COP model."""
        return not self.failing_faults(faults)


def evaluate_placement(
    problem: TPIProblem,
    points: Sequence[TestPoint],
    kernel: Optional[str] = None,
) -> VirtualEvaluation:
    """Run the COP passes with the placement's semantics layered in.

    ``kernel`` picks the simulation backend: ``"compiled"`` (the
    default) runs both passes through a per-circuit compiled kernel and
    ``"numpy"`` through the word-parallel array engine; both take the
    placement's site state as data — one compile/plan serves every
    placement on the circuit — and produce floats bit-identical to the
    interpreted evaluator (``kernel="interp"``), which remains the
    ground-truth arbiter.
    """
    circuit = problem.circuit
    stem_points, branch_points = split_placement(points)

    fn = get_backend(kernel).placement_runner(circuit)
    if fn is not None:
        sctl, bctl, sobs, bobs = placement_site_state(points)
        (
            stem_pre, stem_post, branch_pre, branch_post,
            wire_obs, branch_obs, stem_post_obs,
        ) = fn(
            problem.input_probability,
            sctl,
            bctl,
            sobs,
            bobs,
            control_probability_transform,
            control_observability_factor,
        )
        return VirtualEvaluation(
            problem=problem,
            points=sorted(points),
            stem_pre=stem_pre,
            stem_post=stem_post,
            wire_obs=wire_obs,
            branch_pre=branch_pre,
            branch_post=branch_post,
            branch_obs=branch_obs,
            stem_post_obs=stem_post_obs,
        )

    # ------------------------------------------------------------ forward
    stem_pre: Dict[str, float] = {}
    stem_post: Dict[str, float] = {}
    branch_pre: Dict[_BranchKey, float] = {}
    branch_post: Dict[_BranchKey, float] = {}

    def pin_probability(sink: str, pin: int, driver: str) -> float:
        key = (driver, sink, pin)
        if key in branch_post:
            return branch_post[key]
        return stem_post[driver]

    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.is_input:
            p = problem.input_probability(name)
        else:
            fanin_probs = [
                pin_probability(name, pin, fi)
                for pin, fi in enumerate(node.fanins)
            ]
            p = output_probability(node.gate_type, fanin_probs)
        stem_pre[name] = p
        ctrl = _site_control(stem_points.get(name))
        stem_post[name] = (
            control_probability_transform(ctrl, p) if ctrl else p
        )
        for sink, pin in circuit.fanouts(name):
            key = (name, sink, pin)
            branch_pre[key] = stem_post[name]
            bctrl = _site_control(branch_points.get(key))
            branch_post[key] = (
                control_probability_transform(bctrl, branch_pre[key])
                if bctrl
                else branch_pre[key]
            )

    # ----------------------------------------------------------- backward
    out_set = set(circuit.outputs)
    wire_obs: Dict[str, float] = {}
    branch_obs: Dict[_BranchKey, float] = {}
    stem_post_obs: Dict[str, float] = {}

    def combine(contributions: Iterable[float]) -> float:
        escape = 1.0
        for c in contributions:
            escape *= 1.0 - c
        return 1.0 - escape

    for name in reversed(circuit.topological_order()):
        # Observability of the post-stem-CP line: direct PO observation
        # plus every branch wire.
        post_contribs: List[float] = []
        if name in out_set:
            post_contribs.append(1.0)
        for sink, pin in circuit.fanouts(name):
            key = (name, sink, pin)
            sink_node = circuit.node(sink)
            side_probs = [
                pin_probability(sink, p, fi)
                for p, fi in enumerate(sink_node.fanins)
                if p != pin
            ]
            sens = side_input_sensitization_probability(
                sink_node.gate_type, side_probs
            )
            pin_obs = wire_obs[sink] * sens
            # Branch wire: optional branch CP between the wire and the pin,
            # optional branch OP tapping the wire directly.
            bctrl = _site_control(branch_points.get(key))
            factor = control_observability_factor(bctrl) if bctrl else 1.0
            contribs = [factor * pin_obs]
            if _site_observed(branch_points.get(key)):
                contribs.append(1.0)
            b_obs = combine(contribs)
            branch_obs[key] = b_obs
            post_contribs.append(b_obs)
        post_obs = combine(post_contribs) if post_contribs else 0.0
        stem_post_obs[name] = post_obs
        # Pre-CP wire: optional stem CP attenuates, optional stem OP taps.
        ctrl = _site_control(stem_points.get(name))
        factor = control_observability_factor(ctrl) if ctrl else 1.0
        contribs = [factor * post_obs]
        if _site_observed(stem_points.get(name)):
            contribs.append(1.0)
        wire_obs[name] = combine(contribs)

    return VirtualEvaluation(
        problem=problem,
        points=sorted(points),
        stem_pre=stem_pre,
        stem_post=stem_post,
        wire_obs=wire_obs,
        branch_pre=branch_pre,
        branch_post=branch_post,
        branch_obs=branch_obs,
        stem_post_obs=stem_post_obs,
    )
