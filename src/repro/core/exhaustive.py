"""Exhaustive (provably optimal) test point insertion for small instances.

Enumerates placements in increasing cardinality with cost-based pruning, so
the returned solution is a true minimum-cost feasible placement — the
optimality oracle the DP is validated against (experiment T2).  Complexity
is exponential; keep instances below ~15 candidate sites.

The feasibility predicate is pluggable: pass
:func:`repro.core.dp.quantized_tree_check` (partially applied) to score
with the DP's quantized algebra, or leave the default continuous COP
evaluator for model-level optimality.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..resilience import Budget
from ..sim.faults import Fault, testable_stuck_at_faults
from .problem import TestPoint, TestPointType, TPIProblem, TPISolution
from .virtual import evaluate_placement

__all__ = ["solve_exhaustive"]

FeasibilityCheck = Callable[[Sequence[TestPoint]], bool]


def _default_check(
    problem: TPIProblem, faults: Optional[Sequence[Fault]]
) -> FeasibilityCheck:
    if faults is None:
        faults = testable_stuck_at_faults(problem.circuit)

    def check(points: Sequence[TestPoint]) -> bool:
        return evaluate_placement(problem, points).is_feasible(faults)

    return check


def _conflicting(combo: Sequence[TestPoint]) -> bool:
    """True when two control points land on the same wire."""
    seen: Set[Tuple[str, Optional[Tuple[str, int]]]] = set()
    for tp in combo:
        if not tp.kind.is_control:
            continue
        key = (tp.node, tp.branch)
        if key in seen:
            return True
        seen.add(key)
    return False


def solve_exhaustive(
    problem: TPIProblem,
    faults: Optional[Sequence[Fault]] = None,
    candidate_sites: Optional[Sequence[str]] = None,
    feasibility: Optional[FeasibilityCheck] = None,
    max_subset_size: int = 6,
    budget: Optional[Budget] = None,
) -> TPISolution:
    """Search every placement subset (by increasing size) for minimum cost.

    Parameters
    ----------
    candidate_sites:
        Stem sites to consider (default: every node in the circuit).
    feasibility:
        Predicate deciding whether a placement makes the instance feasible
        (default: the continuous COP evaluator over ``faults``).
    max_subset_size:
        Safety cap on enumerated subset cardinality.
    budget:
        Optional cooperative budget; the wall clock is checked before every
        feasibility evaluation (the exponential part of the search).

    The search is exact: it stops growing subsets once even the cheapest
    ``k``-subset cannot beat the best feasible cost found.
    """
    if feasibility is None:
        feasibility = _default_check(problem, faults)
    if candidate_sites is None:
        candidate_sites = list(problem.circuit.node_names)

    options: List[TestPoint] = []
    for site in candidate_sites:
        for kind in problem.allowed_types:
            options.append(TestPoint(site, kind))
    min_unit = min(problem.costs.of(k) for k in problem.allowed_types)

    best_points: Optional[List[TestPoint]] = None
    best_cost = float("inf")
    checked = 0

    limit = max_subset_size
    if problem.max_points is not None:
        limit = min(limit, problem.max_points)

    for size in range(0, limit + 1):
        if size * min_unit >= best_cost:
            break
        for combo in itertools.combinations(options, size):
            cost = problem.costs.total(combo)
            if cost >= best_cost:
                continue
            if _conflicting(combo):
                continue
            if budget is not None:
                budget.tick("exhaustive.search")
            checked += 1
            if feasibility(combo):
                best_cost = cost
                best_points = list(combo)
        # A feasible solution of size k may still be beaten by a cheaper
        # (k+1)-subset only if unit costs differ; the loop guard handles it.

    if best_points is None:
        return TPISolution(
            points=[],
            cost=float("inf"),
            feasible=False,
            method="exhaustive",
            stats={"checked": float(checked)},
        )
    return TPISolution(
        points=best_points,
        cost=best_cost,
        feasible=True,
        method="exhaustive",
        stats={"checked": float(checked)},
    )
