"""Formalization of the test point insertion (TPI) optimization problem.

An instance bundles a circuit, a detection-probability threshold θ, the
test-point types available, and their costs.  A *solution* is a set of
:class:`TestPoint` placements; it is **feasible** when every stuck-at fault
of the (virtually) modified circuit has COP detection probability ≥ θ, and
**optimal** when its total cost is minimal among feasible solutions.

Test-point semantics (shared by the DP, the baselines, the virtual
evaluator, and the netlist rewriter — see DESIGN.md §2):

======================  =======================  ========================
type                    signal probability       observability of the
                        seen downstream          original (upstream) wire
======================  =======================  ========================
``OBSERVATION``         unchanged                1 (direct tap, pre-CP)
``CONTROL_AND``         ``p → p/2``              ``× 1/2`` (r must be 1)
``CONTROL_OR``          ``p → (1+p)/2``          ``× 1/2`` (r must be 0)
``CONTROL_RANDOM``      ``p → 1/2``              ``× 0`` (mux cuts it)
======================  =======================  ========================

where ``r`` is the pseudo-random test signal (fair bit) driving the control
point.  An observation point taps the wire *upstream* of any control point
at the same site, so the OBSERVATION+CONTROL_RANDOM combination is the
classic full "test point" (observe-and-redrive scan cell).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.netlist import Circuit
from ..testability.testlength import required_threshold

__all__ = [
    "TestPointType",
    "TestPoint",
    "TestPointCosts",
    "TPIProblem",
    "TPISolution",
    "CONTROL_TYPES",
    "control_probability_transform",
    "control_observability_factor",
]


class TestPointType(enum.Enum):
    """The four test-point flavors with their probability semantics."""

    OBSERVATION = "OP"
    CONTROL_AND = "CP-AND"
    CONTROL_OR = "CP-OR"
    CONTROL_RANDOM = "CP-RND"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_control(self) -> bool:
        """True for any control-point flavor."""
        return self is not TestPointType.OBSERVATION


#: The control-point flavors, in canonical order.
CONTROL_TYPES: Tuple[TestPointType, ...] = (
    TestPointType.CONTROL_AND,
    TestPointType.CONTROL_OR,
    TestPointType.CONTROL_RANDOM,
)


@dataclass(frozen=True)
class TestPoint:
    """One test-point placement.

    Attributes
    ----------
    node:
        The driving node whose output wire receives the point.
    kind:
        The test-point flavor.
    branch:
        ``None`` to place on the stem wire; ``(sink, pin)`` to place on a
        single fanout branch (affects only that connection).
    """

    node: str
    kind: TestPointType
    branch: Optional[Tuple[str, int]] = None

    def sort_key(self):
        """Deterministic total order for stable reporting."""
        return (self.node, self.kind.value, self.branch or ("", -1))

    def __lt__(self, other: "TestPoint") -> bool:
        if not isinstance(other, TestPoint):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def describe(self) -> str:
        """Human-readable placement, e.g. ``'OP @ n7'``."""
        site = self.node
        if self.branch is not None:
            site = f"{self.node}->{self.branch[0]}.{self.branch[1]}"
        return f"{self.kind.value} @ {site}"


def control_probability_transform(kind: TestPointType, p: float) -> float:
    """Downstream signal probability after a control point of ``kind``."""
    if kind is TestPointType.CONTROL_AND:
        return 0.5 * p
    if kind is TestPointType.CONTROL_OR:
        return 0.5 * (1.0 + p)
    if kind is TestPointType.CONTROL_RANDOM:
        return 0.5
    raise ValueError(f"{kind} is not a control point")


def control_observability_factor(kind: TestPointType) -> float:
    """Multiplier a control point applies to upstream observability."""
    if kind is TestPointType.CONTROL_AND:
        return 0.5
    if kind is TestPointType.CONTROL_OR:
        return 0.5
    if kind is TestPointType.CONTROL_RANDOM:
        return 0.0
    raise ValueError(f"{kind} is not a control point")


@dataclass(frozen=True)
class TestPointCosts:
    """Relative implementation costs of each flavor.

    Defaults follow the convention of the TPI literature: a control point
    costs one unit (scan cell + gate), an observation point half a unit
    (fanout into the compactor).
    """

    observation: float = 0.5
    control_and: float = 1.0
    control_or: float = 1.0
    control_random: float = 1.0

    def of(self, kind: TestPointType) -> float:
        """Cost of one point of ``kind``."""
        return {
            TestPointType.OBSERVATION: self.observation,
            TestPointType.CONTROL_AND: self.control_and,
            TestPointType.CONTROL_OR: self.control_or,
            TestPointType.CONTROL_RANDOM: self.control_random,
        }[kind]

    def total(self, points: Sequence[TestPoint]) -> float:
        """Total cost of a placement set."""
        return sum(self.of(tp.kind) for tp in points)


@dataclass
class TPIProblem:
    """A complete TPI instance.

    Attributes
    ----------
    circuit:
        The circuit under test (never mutated by solvers).
    threshold:
        Detection-probability threshold θ every fault must meet.
    costs:
        Per-flavor test point costs.
    allowed_types:
        Flavors solvers may use (default: all four).
    input_probabilities:
        P[input = 1] of the pattern source per primary input (default 0.5).
    max_points:
        Optional hard budget on the number of inserted points.
    """

    circuit: Circuit
    threshold: float
    costs: TestPointCosts = field(default_factory=TestPointCosts)
    allowed_types: Tuple[TestPointType, ...] = (
        TestPointType.OBSERVATION,
        TestPointType.CONTROL_AND,
        TestPointType.CONTROL_OR,
        TestPointType.CONTROL_RANDOM,
    )
    input_probabilities: Optional[Dict[str, float]] = None
    max_points: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must lie in (0, 1]")
        if not self.allowed_types:
            raise ValueError("at least one test point type must be allowed")

    @classmethod
    def from_test_length(
        cls,
        circuit: Circuit,
        n_patterns: int,
        escape_budget: float = 0.001,
        **kwargs,
    ) -> "TPIProblem":
        """Build an instance from BIST-level parameters.

        θ is derived so any fault meeting it escapes ``n_patterns`` random
        patterns with probability at most ``escape_budget``.
        """
        theta = required_threshold(n_patterns, escape_budget)
        return cls(circuit=circuit, threshold=theta, **kwargs)

    def input_probability(self, name: str) -> float:
        """P[input = 1] for a primary input under the pattern source."""
        if self.input_probabilities is None:
            return 0.5
        return self.input_probabilities.get(name, 0.5)

    def control_types(self) -> List[TestPointType]:
        """Allowed control-point flavors, canonical order."""
        return [t for t in CONTROL_TYPES if t in self.allowed_types]

    @property
    def observation_allowed(self) -> bool:
        """True when observation points may be used."""
        return TestPointType.OBSERVATION in self.allowed_types


@dataclass
class TPISolution:
    """A solver's answer to a :class:`TPIProblem`.

    Attributes
    ----------
    points:
        The selected placements, sorted.
    cost:
        Total cost under the problem's cost model.
    feasible:
        Whether the solver claims every fault meets θ (verified
        independently by :mod:`repro.core.evaluate` in tests/benches).
    method:
        Short solver identifier (``"dp"``, ``"greedy"``, ...).
    stats:
        Free-form solver statistics (table sizes, iterations, ...).
    """

    points: List[TestPoint]
    cost: float
    feasible: bool
    method: str
    stats: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.points = sorted(self.points)

    def control_points(self) -> List[TestPoint]:
        """The control-point placements in the solution."""
        return [p for p in self.points if p.kind.is_control]

    def observation_points(self) -> List[TestPoint]:
        """The observation-point placements in the solution."""
        return [p for p in self.points if p.kind is TestPointType.OBSERVATION]

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"method={self.method} feasible={self.feasible} cost={self.cost:g} "
            f"points={len(self.points)}"
        ]
        lines.extend("  " + p.describe() for p in self.points)
        return "\n".join(lines)
