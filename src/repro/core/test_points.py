"""Physical insertion of test points into a netlist.

Turns an abstract placement (:class:`~repro.core.problem.TestPoint` set)
into actual DFT hardware on a copy of the circuit:

* **stem observation point** — the node is routed to the response
  compactor, i.e. simply marked as a primary output;
* **branch observation point** — a buffer is spliced into the branch and
  marked as an output (isolating the tap to that branch);
* **control point** — a fresh primary input ``*_tp_r`` models the
  pseudo-random test signal; AND/OR-type points gate the wire with it,
  and a full random re-drive (``CONTROL_RANDOM``) hands the sinks the test
  signal directly;
* points compose at one site: the observation tap always sits *upstream*
  of the control point, matching the virtual semantics.

Because coverage is always reported against the **original** fault list
(test hardware is assumed fault-free, the standard DFT convention), the
result carries a fault map translating every original fault onto its
injection site in the modified netlist (``None`` when a random re-drive
physically disconnects the faulty wire, making the fault undetectable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit
from ..sim.faults import Fault, all_stuck_at_faults
from .problem import TestPoint, TestPointType
from .virtual import split_placement

__all__ = ["InsertionResult", "apply_test_points"]

_BranchKey = Tuple[str, str, int]


@dataclass
class InsertionResult:
    """A modified netlist plus the original-fault translation table.

    Attributes
    ----------
    circuit:
        The rewritten netlist (the input circuit is never mutated).
    fault_map:
        Map original fault → fault to inject in the modified netlist
        (``None`` for faults made physically undetectable by a re-drive).
    test_inputs:
        Names of the added pseudo-random test-signal inputs.
    enable_of:
        Map control point → its test-signal input (used by the
        multi-phase machinery to drive per-phase constants).
    """

    circuit: Circuit
    fault_map: Dict[Fault, Optional[Fault]] = field(default_factory=dict)
    test_inputs: List[str] = field(default_factory=list)
    enable_of: Dict[TestPoint, str] = field(default_factory=dict)

    def mapped_faults(self) -> List[Tuple[Fault, Optional[Fault]]]:
        """The (original, mapped) fault pairs in deterministic order."""
        return sorted(self.fault_map.items(), key=lambda kv: kv[0].sort_key())


def apply_test_points(
    circuit: Circuit, points: Sequence[TestPoint]
) -> InsertionResult:
    """Insert ``points`` into a copy of ``circuit``; see module docstring."""
    stem_points, branch_points = split_placement(points)
    original_faults = all_stuck_at_faults(circuit)
    original_fanouts: Dict[str, List[Tuple[str, int]]] = {
        name: circuit.fanouts(name) for name in circuit.node_names
    }

    mod = circuit.copy(circuit.name + "_tp")
    test_inputs: List[str] = []
    enable_of: Dict[TestPoint, str] = {}
    # Injection connection for each original branch, when it moved.
    branch_injection: Dict[_BranchKey, Optional[Tuple[str, int]]] = {}

    def fresh_test_input(base: str) -> str:
        name = mod.fresh_name(f"{base}_tp_r")
        mod.add_input(name)
        test_inputs.append(name)
        return name

    # ---------------------------------------------------------- stem CPs
    # Applied first so branch hardware lands on the post-CP connections.
    for node_name, tps in sorted(stem_points.items()):
        controls = [t for t in tps if t.kind.is_control]
        if not controls:
            continue
        kind = controls[0].kind
        r = fresh_test_input(node_name)
        enable_of[controls[0]] = r
        if kind is TestPointType.CONTROL_RANDOM:
            new_driver = r
        else:
            gate = (
                GateType.AND if kind is TestPointType.CONTROL_AND else GateType.OR
            )
            new_driver = mod.add_gate(
                mod.fresh_name(f"{node_name}_tp"), gate, [node_name, r]
            )
        for sink, pin in original_fanouts[node_name]:
            mod.replace_fanin(sink, pin, new_driver)
        # A primary output observes the post-CP line.
        if node_name in mod.outputs:
            mod.unmark_output(node_name)
            mod.mark_output(new_driver)

    # ---------------------------------------------------------- stem OPs
    # The tap is on the original node: upstream of any control point.
    for node_name, tps in sorted(stem_points.items()):
        if any(t.kind is TestPointType.OBSERVATION for t in tps):
            mod.mark_output(node_name)

    # -------------------------------------------------------- branch OPs
    for key in sorted(branch_points):
        driver, sink, pin = key
        tps = branch_points[key]
        has_op = any(t.kind is TestPointType.OBSERVATION for t in tps)
        if not has_op:
            continue
        current_driver = mod.node(sink).fanins[pin]
        buf = mod.add_gate(
            mod.fresh_name(f"{driver}_b{pin}_tp_op"),
            GateType.BUF,
            [current_driver],
        )
        mod.replace_fanin(sink, pin, buf)
        mod.mark_output(buf)
        branch_injection[key] = (buf, 0)

    # -------------------------------------------------------- branch CPs
    for key in sorted(branch_points):
        driver, sink, pin = key
        controls = [t for t in branch_points[key] if t.kind.is_control]
        if not controls:
            continue
        kind = controls[0].kind
        r = fresh_test_input(f"{driver}_b{pin}")
        enable_of[controls[0]] = r
        current_driver = mod.node(sink).fanins[pin]
        if kind is TestPointType.CONTROL_RANDOM:
            mod.replace_fanin(sink, pin, r)
            # Without an upstream tap the branch wire is disconnected.
            branch_injection.setdefault(key, None)
        else:
            gate = (
                GateType.AND if kind is TestPointType.CONTROL_AND else GateType.OR
            )
            cp = mod.add_gate(
                mod.fresh_name(f"{driver}_b{pin}_tp"),
                gate,
                [current_driver, r],
            )
            mod.replace_fanin(sink, pin, cp)
            # Inject upstream of the CP unless an OP buffer sits higher.
            branch_injection.setdefault(key, (cp, 0))

    mod.validate()

    # --------------------------------------------------------- fault map
    fault_map: Dict[Fault, Optional[Fault]] = {}
    for fault in original_faults:
        if fault.branch is None:
            fault_map[fault] = fault
            continue
        key = (fault.node, fault.branch[0], fault.branch[1])
        if key in branch_injection:
            conn = branch_injection[key]
            fault_map[fault] = (
                None
                if conn is None
                else Fault(fault.node, fault.value, branch=conn)
            )
        else:
            fault_map[fault] = fault
    return InsertionResult(
        circuit=mod,
        fault_map=fault_map,
        test_inputs=test_inputs,
        enable_of=enable_of,
    )
