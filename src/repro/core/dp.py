"""The dynamic program for optimal test point insertion on tree circuits.

This is the paper's contribution: on a **fanout-free** circuit (every node
drives at most one pin, so each output cone is a tree) the TPI problem has
optimal substructure, and a bottom-up table computation finds a minimum-cost
placement in polynomial time — versus the NP-complete general case.

State
-----
For a node ``n``, let ``o`` be the observability the *environment* grants
``n``'s post-control-point line (through its parent's side inputs, or 1.0
at an observed root), and ``p`` the signal probability ``n`` presents to its
parent after any control point.  The value function is::

    F[n][o][p] = minimum cost of decisions inside subtree(n) such that
                 every enforced fault in subtree(n) meets θ, given the
                 environment observability is o and the resulting
                 downstream probability of n is p.

Both ``o`` and ``p`` live on a :class:`~repro.core.quantize.ProbabilityGrid`
(resolution B), so the tables are finite: the algorithm is exact with
respect to the quantized probability algebra and runs in
``O(|C| · B³ · |decisions|)`` time in the worst case (see DESIGN.md §2 and
experiment F4 for the accuracy/runtime trade-off in B).

Decisions per node: an optional observation point (taps the wire *before*
the control point) × an optional control point (AND-type, OR-type, or
full random re-drive).  Decision semantics match
:mod:`repro.core.problem` exactly; solutions are verified against the
continuous evaluator in the test suite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import obs
from ..circuit.analysis import is_fanout_free
from ..errors import SolverError
from ..resilience import Budget
from ..circuit.gates import (
    GateType,
    output_probability,
    side_input_sensitization_probability,
)
from ..circuit.netlist import Circuit
from .problem import (
    TestPoint,
    TestPointType,
    TPIProblem,
    TPISolution,
    control_observability_factor,
    control_probability_transform,
)
from .quantize import ProbabilityGrid

__all__ = ["DPSolver", "solve_tree", "quantized_tree_check"]

#: A (observation?, control-type-or-None) decision at one node.
_Decision = Tuple[bool, Optional[TestPointType]]


@dataclass
class _Entry:
    """One cell of the DP table: best known way to realize a ``p`` bucket."""

    cost: float
    decision: _Decision
    # (child_name, child_o_idx, child_p_idx) back-pointers.
    children: Tuple[Tuple[str, int, int], ...]


class DPSolver:
    """Bottom-up DP over a fanout-free circuit.

    Parameters
    ----------
    problem:
        The TPI instance; its circuit must be fanout-free with gate fan-in
        ≤ 2 (run :func:`repro.circuit.transforms.factorize_to_two_input`
        first if needed).
    grid:
        Probability quantization grid (default resolution 16).
    root_observabilities:
        Environment observability per root node (default 1.0 — a directly
        observed output).  Used by the region decomposition driver.
    leaf_probabilities:
        Signal probability per leaf (default: the problem's input
        probabilities).  Used by the region driver to stand in boundary
        signals.
    enforced_faults:
        Optional map node → ``(check_sa0, check_sa1)`` overriding which
        polarities are enforced at that node's wire.  Defaults are derived
        from the gate type (tie cells enforce only their detectable fault).
    budget:
        Optional cooperative :class:`~repro.resilience.Budget`; the wall
        clock is checked and ``dp_cells`` charged at every memoized table,
        raising :class:`~repro.errors.BudgetExceededError` mid-solve.
    """

    def __init__(
        self,
        problem: TPIProblem,
        grid: Optional[ProbabilityGrid] = None,
        root_observabilities: Optional[Mapping[str, float]] = None,
        leaf_probabilities: Optional[Mapping[str, float]] = None,
        enforced_faults: Optional[Mapping[str, Tuple[bool, bool]]] = None,
        margin: float = 1.0,
        budget: Optional[Budget] = None,
    ) -> None:
        if margin < 1.0:
            raise SolverError("margin must be ≥ 1")
        circuit = problem.circuit
        circuit.validate()
        if not is_fanout_free(circuit):
            raise SolverError(
                "the DP is exact only on fanout-free circuits; use "
                "repro.core.heuristic for circuits with fanout"
            )
        for node in circuit.gates:
            if len(node.fanins) > 2:
                raise SolverError(
                    "factorize the circuit to ≤2-input gates before the DP"
                )
        dead_gates = [
            n for n in circuit.floating_nodes() if circuit.node(n).is_gate
        ]
        if dead_gates:
            raise SolverError(
                f"dead logic present (sweep first): {dead_gates[:5]}"
            )
        # Unused primary inputs carry structurally untestable faults; they
        # are excluded from planning (matching testable_stuck_at_faults).
        self._floating_inputs = {
            n for n in circuit.floating_nodes() if circuit.node(n).is_input
        }
        self.problem = problem
        self.circuit = circuit
        self.budget = budget
        self.margin = margin
        self.threshold = min(problem.threshold * margin, 1.0)
        self.grid = grid or ProbabilityGrid.for_threshold(self.threshold)
        self._root_obs = dict(root_observabilities or {})
        self._leaf_probs = dict(leaf_probabilities or {})
        self._enforced = dict(enforced_faults or {})
        self._out_set = set(circuit.outputs)
        self._tables: Dict[Tuple[str, int], Dict[int, _Entry]] = {}
        self._decisions = self._decision_space()
        self._table_cells = 0
        self._decisions_enumerated = 0
        self._sens_cache: Dict[GateType, List[float]] = {}
        self._prob_cache: Dict[GateType, List[List[float]]] = {}

    # ------------------------------------------------------------------
    def _decision_space(self) -> List[_Decision]:
        op_options = [False]
        if self.problem.observation_allowed:
            op_options.append(True)
        cp_options: List[Optional[TestPointType]] = [None]
        cp_options.extend(self.problem.control_types())
        return [
            (op, cp) for op, cp in itertools.product(op_options, cp_options)
        ]

    def _decision_cost(self, decision: _Decision) -> float:
        op, cp = decision
        cost = self.problem.costs.observation if op else 0.0
        if cp is not None:
            cost += self.problem.costs.of(cp)
        return cost

    def _enforced_at(self, name: str) -> Tuple[bool, bool]:
        """Which stuck-at polarities must meet θ at this node's wire."""
        override = self._enforced.get(name)
        if override is not None:
            return override
        node = self.circuit.node(name)
        if node.gate_type is GateType.CONST0:
            return (False, True)  # only s-a-1 is a fault of a tied-0 cell
        if node.gate_type is GateType.CONST1:
            return (True, False)
        return (True, True)

    def _leaf_probability(self, name: str) -> float:
        if name in self._leaf_probs:
            return self._leaf_probs[name]
        return self.problem.input_probability(name)

    def _faults_ok(self, name: str, p_pre: float, wire_obs: float) -> bool:
        """Check the enforced faults on this wire against the planning θ."""
        theta = self.threshold - 1e-12
        check0, check1 = self._enforced_at(name)
        if check0 and p_pre * wire_obs < theta:
            return False
        if check1 and (1.0 - p_pre) * wire_obs < theta:
            return False
        return True

    @staticmethod
    def _combine(a: float, b: float) -> float:
        """Independent-event observability combination."""
        return 1.0 - (1.0 - a) * (1.0 - b)

    # ------------------------------------------------------------------
    def _table(self, name: str, o_idx: int) -> Dict[int, _Entry]:
        """Memoized DP table of node ``name`` under environment obs bucket."""
        # An observed node's post-CP line is directly visible regardless of
        # what the parent contributes.
        if name in self._out_set:
            o_idx = self.grid.top_index
        key = (name, o_idx)
        cached = self._tables.get(key)
        if cached is not None:
            return cached
        if self.budget is not None:
            self.budget.tick("dp.table")

        grid = self.grid
        o_env = grid.value(o_idx)
        node = self.circuit.node(name)
        table: Dict[int, _Entry] = {}
        theta = self.threshold - 1e-12
        check0, check1 = self._enforced_at(name)

        # Decisions sharing a wire observability share the expensive child
        # enumeration and the fault feasibility check, so group them.
        groups: Dict[float, List[_Decision]] = {}
        must_check = check0 or check1
        for decision in self._decisions:
            op, cp = decision
            factor = control_observability_factor(cp) if cp else 1.0
            wire_obs = self._combine(1.0 if op else 0.0, factor * o_env)
            if must_check and wire_obs < theta:
                continue  # no excitation can rescue a dead wire
            groups.setdefault(wire_obs, []).append(decision)

        def commit(
            p_pre: float,
            wire_obs: float,
            decisions: List[_Decision],
            base_cost: float,
            children: Tuple[Tuple[str, int, int], ...],
        ) -> None:
            if check0 and p_pre * wire_obs < theta:
                return
            if check1 and (1.0 - p_pre) * wire_obs < theta:
                return
            self._decisions_enumerated += len(decisions)
            for decision in decisions:
                cp = decision[1]
                p_post = (
                    control_probability_transform(cp, p_pre) if cp else p_pre
                )
                p_idx = grid.index(p_post)
                cost = base_cost + self._decision_cost(decision)
                existing = table.get(p_idx)
                if existing is None or cost < existing.cost - 1e-12:
                    table[p_idx] = _Entry(cost, decision, children)

        if node.is_input or not node.fanins:
            if node.is_input:
                p_pre = self._leaf_probability(name)
            else:  # tie cell
                p_pre = 1.0 if node.gate_type is GateType.CONST1 else 0.0
            for wire_obs, decisions in groups.items():
                commit(p_pre, wire_obs, decisions, 0.0, ())
        elif len(node.fanins) == 1:
            child = node.fanins[0]
            gt = node.gate_type
            for wire_obs, decisions in groups.items():
                # Unary gates pass observability through unchanged.
                child_o_idx = grid.floor_index(wire_obs)
                child_table = self._table(child, child_o_idx)
                for pc_idx, centry in child_table.items():
                    p_pre = output_probability(gt, [grid.value(pc_idx)])
                    commit(
                        p_pre,
                        wire_obs,
                        decisions,
                        centry.cost,
                        ((child, child_o_idx, pc_idx),),
                    )
        else:
            child_a, child_b = node.fanins
            gt = node.gate_type
            sens = self._sens_table(gt)
            prob = self._prob_table(gt)
            for wire_obs, decisions in groups.items():
                # Raising observability only relaxes subtree constraints, so
                # the table at the *maximum* child observability carries a
                # superset of every achievable probability bucket — iterate
                # achievable states only, not the whole grid.
                ob_of = [
                    grid.floor_index(wire_obs * s) for s in sens
                ]
                top_o = grid.floor_index(wire_obs)
                ref_a = self._table(child_a, top_o)
                for pa_idx in ref_a:
                    o_b_idx = ob_of[pa_idx]
                    table_b = self._table(child_b, o_b_idx)
                    if not table_b:
                        continue
                    row = prob[pa_idx]
                    for pb_idx, bentry in table_b.items():
                        o_a_idx = ob_of[pb_idx]
                        aentry = self._table(child_a, o_a_idx).get(pa_idx)
                        if aentry is None:
                            continue
                        commit(
                            row[pb_idx],
                            wire_obs,
                            decisions,
                            aentry.cost + bentry.cost,
                            (
                                (child_a, o_a_idx, pa_idx),
                                (child_b, o_b_idx, pb_idx),
                            ),
                        )

        self._tables[key] = table
        self._table_cells += len(table)
        if self.budget is not None:
            self.budget.charge("dp_cells", len(table), "dp.table")
        return table

    def _sens_table(self, gate_type: GateType) -> List[float]:
        """Side-input sensitization per sibling probability bucket (cached)."""
        cached = self._sens_cache.get(gate_type)
        if cached is None:
            cached = [
                side_input_sensitization_probability(gate_type, [v])
                for v in self.grid.values()
            ]
            self._sens_cache[gate_type] = cached
        return cached

    def _prob_table(self, gate_type: GateType) -> List[List[float]]:
        """Gate output probability per input bucket pair (cached)."""
        cached = self._prob_cache.get(gate_type)
        if cached is None:
            vals = self.grid.values()
            cached = [
                [output_probability(gate_type, [va, vb]) for vb in vals]
                for va in vals
            ]
            self._prob_cache[gate_type] = cached
        return cached

    # ------------------------------------------------------------------
    def _roots(self) -> List[str]:
        return [
            name
            for name in self.circuit.topological_order()
            if self.circuit.fanout_count(name) == 0
            and name not in self._floating_inputs
        ]

    def solve(self) -> TPISolution:
        """Run the DP and return the minimum-cost placement."""
        with obs.span(
            "dp.solve",
            circuit=self.circuit.name,
            grid_size=len(self.grid),
            threshold=self.threshold,
        ) as sp:
            total_cost = 0.0
            picks: List[Tuple[str, int, int]] = []
            feasible = True
            for root in self._roots():
                env = self._root_obs.get(root, 1.0)
                o_idx = self.grid.floor_index(env)
                table = self._table(root, o_idx)
                if not table:
                    feasible = False
                    continue
                best_p = min(table, key=lambda p: (table[p].cost, p))
                total_cost += table[best_p].cost
                picks.append((root, o_idx, best_p))

            points: List[TestPoint] = []
            stack = list(picks)
            while stack:
                name, o_idx, p_idx = stack.pop()
                if name in self._out_set:
                    o_idx = self.grid.top_index
                entry = self._tables[(name, o_idx)][p_idx]
                op, cp = entry.decision
                if op:
                    points.append(TestPoint(name, TestPointType.OBSERVATION))
                if cp is not None:
                    points.append(TestPoint(name, cp))
                stack.extend(entry.children)

            sp.set(
                table_cells=self._table_cells,
                decisions=self._decisions_enumerated,
                feasible=feasible,
                points=len(points),
            )
        obs.count("dp.solves")
        obs.count("dp.table_cells", self._table_cells)
        obs.count("dp.tables", len(self._tables))
        obs.count("dp.decisions", self._decisions_enumerated)
        obs.gauge("dp.grid_size", len(self.grid))
        if obs.enabled():
            # Per-node state-space sizes: how many (o, p) cells each
            # memoized table actually carries under the pruning.
            for table in self._tables.values():
                obs.observe("dp.states_per_node", len(table))

        return TPISolution(
            points=points,
            cost=self.problem.costs.total(points) if feasible else float("inf"),
            feasible=feasible,
            method="dp",
            stats={
                "table_cells": float(self._table_cells),
                "tables": float(len(self._tables)),
                "decisions": float(self._decisions_enumerated),
                "grid_size": float(len(self.grid)),
            },
        )


def quantized_tree_check(
    problem: TPIProblem,
    points: Sequence[TestPoint],
    grid: Optional[ProbabilityGrid] = None,
    root_observabilities: Optional[Mapping[str, float]] = None,
    leaf_probabilities: Optional[Mapping[str, float]] = None,
    enforced_faults: Optional[Mapping[str, Tuple[bool, bool]]] = None,
    margin: float = 1.0,
) -> bool:
    """Feasibility of a placement under the DP's *quantized* algebra.

    Mirrors the DP's rounding exactly (probabilities round to nearest,
    observabilities floor at every parent→child handoff), so exhaustive
    search over placements scored by this function optimizes precisely the
    objective the DP optimizes — the apples-to-apples optimality oracle of
    experiment T2.  Only stem placements are meaningful on trees.
    """
    solver = DPSolver(
        problem,
        grid=grid,
        root_observabilities=root_observabilities,
        leaf_probabilities=leaf_probabilities,
        enforced_faults=enforced_faults,
        margin=margin,
    )
    grid = solver.grid
    circuit = problem.circuit
    by_site: Dict[str, List[TestPoint]] = {}
    for tp in points:
        if tp.branch is not None:
            raise ValueError("tree placements are stem-only")
        by_site.setdefault(tp.node, []).append(tp)

    def site_decision(name: str) -> _Decision:
        tps = by_site.get(name, ())
        op = any(t.kind is TestPointType.OBSERVATION for t in tps)
        controls = [t.kind for t in tps if t.kind.is_control]
        if len(controls) > 1:
            raise ValueError(f"multiple control points at {name!r}")
        return (op, controls[0] if controls else None)

    # Forward pass: quantized downstream probabilities.
    p_pre: Dict[str, float] = {}
    p_post_q: Dict[str, float] = {}
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.is_input:
            pre = solver._leaf_probability(name)
        elif not node.fanins:
            pre = 1.0 if node.gate_type is GateType.CONST1 else 0.0
        else:
            pre = output_probability(
                node.gate_type, [p_post_q[fi] for fi in node.fanins]
            )
        _op, cp = site_decision(name)
        post = control_probability_transform(cp, pre) if cp else pre
        p_pre[name] = pre
        p_post_q[name] = grid.quantize(post)

    # Backward pass: quantized environment observabilities + fault checks.
    root_obs = dict(root_observabilities or {})
    out_set = set(circuit.outputs)
    o_env: Dict[str, float] = {}
    order = circuit.topological_order()
    for name in reversed(order):
        if circuit.fanout_count(name) == 0:
            env = grid.value(grid.floor_index(root_obs.get(name, 1.0)))
        else:
            env = o_env[name]
        if name in out_set:
            env = 1.0
        op, cp = site_decision(name)
        factor = control_observability_factor(cp) if cp else 1.0
        wire = DPSolver._combine(1.0 if op else 0.0, factor * env)
        if not solver._faults_ok(name, p_pre[name], wire):
            return False
        node = circuit.node(name)
        for pin, fi in enumerate(node.fanins):
            side = [
                p_post_q[other]
                for p, other in enumerate(node.fanins)
                if p != pin
            ]
            sens = side_input_sensitization_probability(node.gate_type, side)
            o_env[fi] = grid.value(grid.floor_index(wire * sens))
    return True


def solve_tree(
    problem: TPIProblem,
    grid: Optional[ProbabilityGrid] = None,
    root_observabilities: Optional[Mapping[str, float]] = None,
    leaf_probabilities: Optional[Mapping[str, float]] = None,
    enforced_faults: Optional[Mapping[str, Tuple[bool, bool]]] = None,
    margin: float = 1.0,
    budget: Optional[Budget] = None,
) -> TPISolution:
    """Convenience wrapper: construct a :class:`DPSolver` and solve.

    ``margin > 1`` makes the DP plan against ``θ × margin``, buying back the
    quantization slack so solutions also satisfy the *continuous* COP model
    (margin ≈ 1.5–2 suffices empirically; see the verification tests).

    Under an ambient :class:`repro.verify.GuardedSession` the returned
    solution is independently certified — re-checked with
    :func:`quantized_tree_check` under this solve's exact grid and
    context — before being handed back.
    """
    solution = DPSolver(
        problem,
        grid=grid,
        root_observabilities=root_observabilities,
        leaf_probabilities=leaf_probabilities,
        enforced_faults=enforced_faults,
        margin=margin,
        budget=budget,
    ).solve()
    # Runtime-lazy: repro.verify imports solver modules.
    from ..verify.certify import maybe_certify

    def dp_check(points) -> bool:
        return quantized_tree_check(
            problem,
            points,
            grid=grid,
            root_observabilities=root_observabilities,
            leaf_probabilities=leaf_probabilities,
            enforced_faults=enforced_faults,
            margin=margin,
        )

    dp_context = {
        "grid_values": list(grid.values()) if grid is not None else None,
        "root_observabilities": (
            dict(root_observabilities)
            if root_observabilities is not None
            else None
        ),
        "leaf_probabilities": (
            dict(leaf_probabilities) if leaf_probabilities is not None else None
        ),
        "enforced_faults": (
            {k: list(v) for k, v in enforced_faults.items()}
            if enforced_faults is not None
            else None
        ),
        "margin": margin,
    }
    return maybe_certify(
        problem, solution, dp_check=dp_check, dp_context=dp_context
    )
