"""Multi-phase fixed-value control points — the extension direction.

The 1987 formulation drives every control point from an independent
pseudo-random signal.  Its successor line of work (multi-phase TPI,
Tamarapalli & Rajski ITC'96) instead drives control points with **fixed
values**, partitioning the test into phases: within a phase each enabled
AND-type point forces a constant 0 and each OR-type point a constant 1;
conflicting points are enabled in *different* phases.  The hardware is
simpler (a phase-decoder output per group instead of a scan cell per
point) and destructive interference between simultaneously-random points
disappears.

This module implements that extension on top of the library's placement
semantics:

* a phase maps every AND/OR control point of a placement to enabled
  (fixed value) or disabled (transparent wire);
* per-phase analytical evaluation reuses the virtual evaluator with the
  fixed-value transforms;
* a greedy conflict-aware scheduler packs the control points of any
  solution into a minimum-ish number of phases;
* measured evaluation drives the *same inserted hardware* produced by
  :func:`repro.core.test_points.apply_test_points`, holding each phase's
  enable inputs constant — no new netlist machinery needed.

Phase 0 is always the all-transparent phase, preserving the unmodified
circuit's baseline detection (the constructive-methodology convention).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..sim.fault_sim import FaultSimulator
from ..sim.faults import Fault, testable_stuck_at_faults
from ..sim.patterns import PatternSource, UniformRandomSource
from .problem import TestPoint, TestPointType, TPIProblem
from .test_points import apply_test_points
from .virtual import VirtualEvaluation

__all__ = [
    "PhasePlan",
    "evaluate_phase",
    "phase_escape_probabilities",
    "schedule_phases",
    "measure_phase_coverage",
]

#: Control kinds the phase machinery can schedule (fixed-value capable).
_SCHEDULABLE = (TestPointType.CONTROL_AND, TestPointType.CONTROL_OR)


@dataclass
class PhasePlan:
    """A placement partitioned into fixed-value test phases.

    Attributes
    ----------
    observation_points:
        Always-on observation points (every phase sees them).
    phases:
        Per phase, the set of *enabled* control points.  Phase 0 is the
        empty (all-transparent) phase by convention.
    unscheduled:
        Control points that cannot be phase-driven (random re-drives);
        they stay active in every phase.
    """

    observation_points: List[TestPoint] = field(default_factory=list)
    phases: List[List[TestPoint]] = field(default_factory=lambda: [[]])
    unscheduled: List[TestPoint] = field(default_factory=list)

    @property
    def n_phases(self) -> int:
        """Number of phases (including the transparent phase 0)."""
        return len(self.phases)

    def all_points(self) -> List[TestPoint]:
        """Every distinct point of the underlying placement."""
        seen: Set[TestPoint] = set(self.observation_points) | set(
            self.unscheduled
        )
        for phase in self.phases:
            seen |= set(phase)
        return sorted(seen)

    def describe(self) -> str:
        """Multi-line phase table."""
        lines = [f"{self.n_phases} phases, "
                 f"{len(self.observation_points)} always-on OPs"]
        for k, phase in enumerate(self.phases):
            members = ", ".join(p.describe() for p in phase) or "(transparent)"
            lines.append(f"  phase {k}: {members}")
        if self.unscheduled:
            lines.append(
                "  always active: "
                + ", ".join(p.describe() for p in self.unscheduled)
            )
        return "\n".join(lines)


def evaluate_phase(
    problem: TPIProblem,
    plan: PhasePlan,
    phase_index: int,
) -> VirtualEvaluation:
    """Analytically evaluate one phase of the plan.

    Enabled AND/OR points become fixed constants (probability 0/1,
    upstream observability 0); disabled ones vanish (transparent wire);
    observation points and random re-drives apply in every phase.
    """
    if not 0 <= phase_index < plan.n_phases:
        raise IndexError(f"no phase {phase_index}")
    return _evaluate_fixed(problem, plan, phase_index)


def _evaluate_fixed(
    problem: TPIProblem, plan: PhasePlan, phase_index: int
) -> VirtualEvaluation:
    """Exact fixed-value phase evaluation via enable-probability rewiring.

    The trick: an AND-type point with enable probability ``q`` yields
    ``p → p·q`` and observability factor ``q``; fixed enables are the
    ``q = 0`` (enabled, forces 0) / ``q = 1`` (disabled, transparent)
    endpoints of the same algebra.  We therefore rebuild the evaluator's
    passes with per-point ``q`` values.
    """
    from ..circuit.gates import (
        output_probability,
        side_input_sensitization_probability,
    )

    circuit = problem.circuit
    enabled = set(plan.phases[phase_index])
    ops = set(plan.observation_points)
    always = set(plan.unscheduled)

    # Per-site effective transform parameters.
    site_ctrl: Dict[Tuple[str, Optional[Tuple[str, int]]], Tuple[float, int]] = {}
    # value: (q, polarity) — polarity 0: AND-type (force 0), 1: OR-type.
    for point in plan.all_points():
        if not point.kind.is_control:
            continue
        key = (point.node, point.branch)
        if point in always:
            if point.kind is TestPointType.CONTROL_RANDOM:
                site_ctrl[key] = (0.5, -1)  # random re-drive
            else:
                site_ctrl[key] = (
                    0.5,
                    0 if point.kind is TestPointType.CONTROL_AND else 1,
                )
        elif point in enabled:
            site_ctrl[key] = (
                0.0,
                0 if point.kind is TestPointType.CONTROL_AND else 1,
            )
        # disabled points are transparent: no entry.
    op_sites = {(p.node, p.branch) for p in ops}

    def transform(key, p: float) -> float:
        if key not in site_ctrl:
            return p
        q, polarity = site_ctrl[key]
        if polarity == -1:  # random re-drive
            return 0.5
        if polarity == 0:  # AND with enable of probability q
            return p * q
        return 1.0 - (1.0 - p) * q  # OR with NOT-enable prob q... see note

    # Note on OR-type: hardware is OR(wire, r); r = 1 forces 1.  With
    # P[r = 1] = 1 - q where q is the "transparency" probability:
    # p' = 1 - (1 - p) * q, obs factor = q.  Enabled: q = 0 → p' = 1.
    # Always-random: q = 0.5 → p' = (1 + p)/2, matching CONTROL_OR.

    def obs_factor(key) -> float:
        if key not in site_ctrl:
            return 1.0
        q, polarity = site_ctrl[key]
        if polarity == -1:
            return 0.0
        return q

    # ------------------------------------------------------------ forward
    stem_pre: Dict[str, float] = {}
    stem_post: Dict[str, float] = {}
    branch_pre: Dict[Tuple[str, str, int], float] = {}
    branch_post: Dict[Tuple[str, str, int], float] = {}

    def pin_probability(sink: str, pin: int, driver: str) -> float:
        return branch_post.get((driver, sink, pin), stem_post[driver])

    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.is_input:
            p = problem.input_probability(name)
        else:
            p = output_probability(
                node.gate_type,
                [
                    pin_probability(name, pin, fi)
                    for pin, fi in enumerate(node.fanins)
                ],
            )
        stem_pre[name] = p
        stem_post[name] = transform((name, None), p)
        for sink, pin in circuit.fanouts(name):
            bkey = (name, sink, pin)
            branch_pre[bkey] = stem_post[name]
            branch_post[bkey] = transform(
                (name, (sink, pin)), branch_pre[bkey]
            )

    # ----------------------------------------------------------- backward
    out_set = set(circuit.outputs)
    wire_obs: Dict[str, float] = {}
    branch_obs: Dict[Tuple[str, str, int], float] = {}
    stem_post_obs: Dict[str, float] = {}

    def combine(values) -> float:
        escape = 1.0
        for v in values:
            escape *= 1.0 - v
        return 1.0 - escape

    for name in reversed(circuit.topological_order()):
        post_contribs: List[float] = []
        if name in out_set:
            post_contribs.append(1.0)
        for sink, pin in circuit.fanouts(name):
            bkey = (name, sink, pin)
            sink_node = circuit.node(sink)
            side = [
                pin_probability(sink, p, fi)
                for p, fi in enumerate(sink_node.fanins)
                if p != pin
            ]
            sens = side_input_sensitization_probability(
                sink_node.gate_type, side
            )
            pin_obs = wire_obs[sink] * sens
            contribs = [obs_factor((name, (sink, pin))) * pin_obs]
            if (name, (sink, pin)) in op_sites:
                contribs.append(1.0)
            b_obs = combine(contribs)
            branch_obs[bkey] = b_obs
            post_contribs.append(b_obs)
        post = combine(post_contribs) if post_contribs else 0.0
        stem_post_obs[name] = post
        contribs = [obs_factor((name, None)) * post]
        if (name, None) in op_sites:
            contribs.append(1.0)
        wire_obs[name] = combine(contribs)

    return VirtualEvaluation(
        problem=problem,
        points=plan.all_points(),
        stem_pre=stem_pre,
        stem_post=stem_post,
        wire_obs=wire_obs,
        branch_pre=branch_pre,
        branch_post=branch_post,
        branch_obs=branch_obs,
        stem_post_obs=stem_post_obs,
    )


def phase_escape_probabilities(
    problem: TPIProblem,
    plan: PhasePlan,
    n_patterns: int,
    faults: Optional[Sequence[Fault]] = None,
) -> Dict[Fault, float]:
    """Per-fault escape probability across all phases.

    The pattern budget splits evenly over the phases; a fault escapes the
    whole test only if it escapes every phase:
    ``Π_k (1 - d_k)^(N/K)``.
    """
    if faults is None:
        faults = testable_stuck_at_faults(problem.circuit)
    per_phase = max(1, n_patterns // plan.n_phases)
    escapes = {f: 1.0 for f in faults}
    for k in range(plan.n_phases):
        evaluation = _evaluate_fixed(problem, plan, k)
        for f in faults:
            d = evaluation.fault_detection(f)
            escapes[f] *= (1.0 - d) ** per_phase
    return escapes


def schedule_phases(
    problem: TPIProblem,
    points: Sequence[TestPoint],
    n_patterns: int,
    escape_budget: float = 0.001,
    max_phases: int = 8,
    faults: Optional[Sequence[Fault]] = None,
) -> PhasePlan:
    """Pack a placement's control points into fixed-value phases.

    Greedy constructive scheduling in the spirit of the successor work:
    phase 0 is transparent; each AND/OR control point joins the first
    later phase where adding it does not reduce the number of faults that
    phase newly secures, else opens a new phase (up to ``max_phases``).
    """
    if faults is None:
        faults = testable_stuck_at_faults(problem.circuit)
    plan = PhasePlan(
        observation_points=[
            p for p in points if p.kind is TestPointType.OBSERVATION
        ],
        phases=[[]],
        unscheduled=[
            p
            for p in points
            if p.kind is TestPointType.CONTROL_RANDOM
        ],
    )
    controls = [p for p in points if p.kind in _SCHEDULABLE]

    def secured_count(phase_points: List[TestPoint]) -> int:
        trial = PhasePlan(
            observation_points=plan.observation_points,
            phases=[phase_points],
            unscheduled=plan.unscheduled,
        )
        evaluation = _evaluate_fixed(problem, trial, 0)
        theta = problem.threshold
        return sum(
            1 for f in faults if evaluation.fault_detection(f) >= theta
        )

    for point in sorted(controls):
        placed = False
        for k in range(1, len(plan.phases)):
            before = secured_count(plan.phases[k])
            after = secured_count(plan.phases[k] + [point])
            if after >= before:
                plan.phases[k].append(point)
                placed = True
                break
        if not placed:
            if len(plan.phases) < max_phases:
                plan.phases.append([point])
            else:
                # Fall back to the least-harmed phase.
                best_k = min(
                    range(1, len(plan.phases)),
                    key=lambda k: secured_count(plan.phases[k])
                    - secured_count(plan.phases[k] + [point]),
                )
                plan.phases[best_k].append(point)
    return plan


def measure_phase_coverage(
    problem: TPIProblem,
    plan: PhasePlan,
    n_patterns: int,
    source: Optional[PatternSource] = None,
) -> float:
    """Measured collapsed coverage of the phased test on real hardware.

    The placement is physically inserted once; each phase then drives the
    enable inputs to that phase's constants (AND-type enabled → 0,
    disabled → 1; OR-type enabled → 1, disabled → 0; random re-drives stay
    random) and fault simulates its share of the budget.  A fault counts
    as detected if any phase detects it.
    """
    from ..sim.faults import collapse_faults

    source = source or UniformRandomSource(seed=1)
    circuit = problem.circuit
    insertion = apply_test_points(circuit, plan.all_points())
    mod = insertion.circuit
    sim = FaultSimulator(mod)
    reference = collapse_faults(circuit).representatives
    mapped = {f: insertion.fault_map[f] for f in reference}

    enable_of = insertion.enable_of
    per_phase = max(1, n_patterns // plan.n_phases)
    detected: Set[Fault] = set()
    for k in range(plan.n_phases):
        with obs.span(
            "phases.phase",
            circuit=circuit.name,
            phase=k,
            enabled_points=len(plan.phases[k]),
            n_patterns=per_phase,
        ) as sp:
            enabled = set(plan.phases[k])
            stimulus = UniformRandomSource(seed=1000 + k).generate(
                mod.inputs, per_phase
            )
            mask = (1 << per_phase) - 1
            for point in plan.all_points():
                if not point.kind.is_control:
                    continue
                r = enable_of.get(point)
                if r is None:
                    continue
                if point.kind is TestPointType.CONTROL_RANDOM:
                    continue  # stays random
                if point.kind is TestPointType.CONTROL_AND:
                    stimulus[r] = 0 if point in enabled else mask
                else:  # CONTROL_OR
                    stimulus[r] = mask if point in enabled else 0
            result = sim.run(
                stimulus,
                per_phase,
                faults=[m for m in mapped.values() if m is not None],
            )
            before = len(detected)
            for orig, m in mapped.items():
                if m is not None and result.detection_word[m]:
                    detected.add(orig)
            newly = len(detected) - before
            cumulative = (
                len(detected) / len(reference) if reference else 1.0
            )
            sp.set(
                newly_detected=newly,
                cumulative_coverage=cumulative,
                coverage_delta=newly / len(reference) if reference else 0.0,
            )
        obs.count("phases.phases_run")
        obs.count("phases.newly_detected", newly)
    return len(detected) / len(reference) if reference else 1.0
