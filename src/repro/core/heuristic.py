"""DP-based heuristic for general (reconvergent) circuits.

The paper's tractable core — the exact tree DP — is lifted to arbitrary
circuits by iterating over fanout-free regions:

1. evaluate the current placement analytically and collect failing faults;
2. for every region owning a failing fault, re-plan that region from
   scratch with the tree DP against its current environment (leaf
   probabilities, root observability);
3. repeat until no fault fails, nothing changes, or the round budget is
   exhausted;
4. optionally let the greedy solver mop up leftovers the quantized
   regional view could not fix (orphan PI stems, cross-region conflicts).

The result is not globally optimal — the general problem is NP-complete —
but inherits the DP's within-region optimality, which is where most of the
structure lives (experiment T4 quantifies the margin over pure greedy).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.analysis import fanout_free_regions
from ..resilience import Budget
from ..sim.faults import Fault, testable_stuck_at_faults
from .dp import solve_tree
from .greedy import solve_greedy
from .incremental import IncrementalEvaluator
from .problem import TestPoint, TPIProblem, TPISolution
from .quantize import ProbabilityGrid
from .regions import (
    extract_region_subproblem,
    fault_region_owner,
    owner_of_fault,
)

__all__ = ["solve_dp_heuristic"]

_Wire = Tuple[str, Optional[Tuple[str, int]]]


def _merge_points(
    existing: Sequence[TestPoint], new: Sequence[TestPoint]
) -> List[TestPoint]:
    """Append ``new`` onto ``existing``, dropping wire-level conflicts.

    A wire keeps its first control point; duplicate observation points
    collapse.  Needed because two regions can share a boundary wire (a
    fanout-1 root feeding the next region).
    """
    merged = list(existing)
    controlled: Set[_Wire] = {
        (p.node, p.branch) for p in existing if p.kind.is_control
    }
    present: Set[TestPoint] = set(existing)
    for p in new:
        if p in present:
            continue
        wire = (p.node, p.branch)
        if p.kind.is_control:
            if wire in controlled:
                continue
            controlled.add(wire)
        present.add(p)
        merged.append(p)
    return merged


def solve_dp_heuristic(
    problem: TPIProblem,
    grid: Optional[ProbabilityGrid] = None,
    faults: Optional[Sequence[Fault]] = None,
    max_rounds: int = 8,
    final_greedy: bool = True,
    margin: float = 1.5,
    budget: Optional[Budget] = None,
) -> TPISolution:
    """Iterative DP-on-regions TPI for circuits with reconvergent fanout.

    Parameters
    ----------
    problem:
        The instance; any combinational circuit with ≤2-input gates.
    grid:
        Quantization grid shared by all regional DPs.
    faults:
        Faults to satisfy (default: the full stuck-at list).
    max_rounds:
        Maximum re-planning sweeps over the regions.
    final_greedy:
        Run the greedy mop-up stage on whatever the regional DPs left
        failing (recommended; off for ablations).
    margin:
        Planning margin forwarded to the regional DPs (``θ × margin``),
        covering quantization slack and cross-region coupling.
    budget:
        Optional cooperative budget, checked at every round and region
        boundary and forwarded into the regional DPs and the greedy
        mop-up, so one shared limit bounds the whole heuristic.
    """
    circuit = problem.circuit
    if faults is None:
        faults = testable_stuck_at_faults(circuit)
    grid = grid or ProbabilityGrid.for_threshold(
        min(problem.threshold * margin, 1.0)
    )
    regions = fanout_free_regions(circuit)
    owner = fault_region_owner(circuit, regions)

    points: List[TestPoint] = []
    points_by_region: Dict[int, List[TestPoint]] = {}
    rounds = 0
    dp_calls = 0
    # One incremental evaluator serves the whole solve: the per-round
    # global evaluation rebases it, and each region's environment
    # evaluation (current points minus that region's own) is a small
    # removal delta against the rebased cache.
    inc = IncrementalEvaluator(problem, points, faults=faults)

    for _ in range(max_rounds):
        rounds += 1
        if budget is not None:
            budget.tick("heuristic.round")
        evaluation = inc.rebase(points)
        failing = inc.failing_faults()
        if not failing:
            break
        targets = sorted(
            {
                ridx
                for ridx in (owner_of_fault(f, owner) for f in failing)
                if ridx is not None
            }
        )
        if not targets:
            break
        progress = False
        for ridx in targets:
            if budget is not None:
                budget.tick("heuristic.region")
            old = points_by_region.get(ridx, [])
            base = [p for p in points if p not in set(old)]
            base_eval = inc.evaluate(base)
            sub = extract_region_subproblem(
                problem, regions[ridx], base_eval, budget=budget
            )
            sub_problem = TPIProblem(
                circuit=sub.circuit,
                threshold=problem.threshold,
                costs=problem.costs,
                allowed_types=problem.allowed_types,
                input_probabilities=sub.leaf_probabilities,
            )
            dp_calls += 1
            solution = solve_tree(
                sub_problem,
                grid=grid,
                root_observabilities={sub.region.root: sub.root_observability},
                leaf_probabilities=sub.leaf_probabilities,
                enforced_faults=sub.enforced,
                margin=margin,
                budget=budget,
            )
            if not solution.feasible:
                continue
            mapped = [sub.map_point(p) for p in solution.points]
            if set(mapped) != set(old):
                progress = True
            points = _merge_points(base, mapped)
            points_by_region[ridx] = mapped
        if not progress:
            break

    evaluation = inc.evaluate(points)
    feasible = evaluation.is_feasible(faults)
    mop_up_points = 0
    if not feasible and final_greedy:
        greedy = solve_greedy(
            problem, faults=faults, initial_points=points, budget=budget
        )
        mop_up_points = len(greedy.points) - len(points)
        points = greedy.points
        feasible = greedy.feasible

    return TPISolution(
        points=points,
        cost=problem.costs.total(points),
        feasible=feasible,
        method="dp-heuristic",
        stats={
            "rounds": float(rounds),
            "regions": float(len(regions)),
            "dp_calls": float(dp_calls),
            "mop_up_points": float(mop_up_points),
        },
    )
