"""Probability quantization grids for the dynamic program.

The DP's state space is the set of achievable signal probabilities and
observabilities at each node; to keep it polynomial these are discretized
onto a finite grid.  The result is optimal *with respect to the quantized
probability algebra*; denser grids converge on the continuous optimum
(experiment F4 measures the trade-off).

Two grid families are provided:

* **uniform** — ``{0, 1/B, …, 1}``; adequate when the threshold θ is
  comparable to ``1/B``;
* **geometric** — a log-spaced ladder near 0 mirrored near 1, with a
  uniform mid-section.  Pseudo-random BIST thresholds are tiny
  (θ = 1 − ε^(1/N) ≈ 10⁻³ for 4k patterns), far below any practical
  uniform resolution, and detection probabilities multiply — so relative
  (log) resolution is the right currency.  :meth:`ProbabilityGrid.for_threshold`
  builds the geometric grid matched to an instance's θ; the tree solvers
  use it by default.

Rounding policy: probabilities round to the **nearest** grid value;
observabilities round **down** (propagation estimates stay conservative,
so "feasible" never rests on rounding generosity).
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Sequence

__all__ = ["ProbabilityGrid"]


class ProbabilityGrid:
    """A finite, sorted set of probability values with rounding helpers.

    Parameters
    ----------
    resolution:
        Build a uniform grid ``{0, 1/B, …, 1}`` (ignored when ``values``
        is given).
    values:
        Explicit grid values; 0.0 and 1.0 are always included.
    """

    def __init__(
        self, resolution: int = 16, values: Optional[Iterable[float]] = None
    ) -> None:
        if values is None:
            if resolution < 2:
                raise ValueError("grid resolution must be ≥ 2")
            vals = [i / resolution for i in range(resolution + 1)]
        else:
            vals = sorted({min(1.0, max(0.0, float(v))) for v in values} | {0.0, 1.0})
            if len(vals) < 3:
                raise ValueError("grid needs at least 3 distinct values")
        self._values: List[float] = vals

    # -------------------------------------------------------- constructors
    @classmethod
    def geometric(
        cls,
        min_probability: float,
        ratio: float = 2.0,
        uniform_steps: int = 8,
    ) -> "ProbabilityGrid":
        """Log-spaced grid resolving probabilities down to ``min_probability``.

        Values climb geometrically from ``min_probability`` to 0.5 with the
        given ``ratio``, are mirrored around 0.5 (so ``1 - v`` is on the
        grid whenever ``v`` is), and a uniform mid-section of
        ``uniform_steps`` intervals is merged in.
        """
        if not 0.0 < min_probability < 0.5:
            raise ValueError("min_probability must lie in (0, 0.5)")
        if ratio <= 1.0:
            raise ValueError("ratio must exceed 1")
        ladder: List[float] = []
        v = min_probability
        while v < 0.5:
            ladder.append(v)
            v *= ratio
        vals = set(ladder) | {1.0 - v for v in ladder} | {0.5}
        vals |= {i / uniform_steps for i in range(uniform_steps + 1)}
        return cls(values=vals)

    @classmethod
    def for_threshold(
        cls, threshold: float, ratio: float = 2.0, uniform_steps: int = 8
    ) -> "ProbabilityGrid":
        """The geometric grid matched to a TPI instance's threshold θ.

        Resolves down to ``θ/4`` so that excitation/observability factors
        near θ survive quantization with margin.
        """
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must lie in (0, 1]")
        min_p = min(threshold / 4.0, 0.25)
        return cls.geometric(min_p, ratio=ratio, uniform_steps=uniform_steps)

    # ------------------------------------------------------------ rounding
    def index(self, p: float) -> int:
        """Index of the grid value nearest to ``p`` (clamped to [0, 1])."""
        p = min(1.0, max(0.0, p))
        i = bisect.bisect_left(self._values, p)
        if i == 0:
            return 0
        if i >= len(self._values):
            return len(self._values) - 1
        below, above = self._values[i - 1], self._values[i]
        return i if (above - p) <= (p - below) else i - 1

    def floor_index(self, p: float) -> int:
        """Index of the largest grid value ≤ ``p`` (conservative)."""
        p = min(1.0, max(0.0, p))
        # Fuzz guard: a value within 1e-12 of a grid point counts as it.
        i = bisect.bisect_right(self._values, p + 1e-12)
        return max(0, i - 1)

    def value(self, index: int) -> float:
        """Probability value at grid ``index``."""
        return self._values[index]

    def quantize(self, p: float) -> float:
        """Round ``p`` to the nearest grid value."""
        return self._values[self.index(p)]

    def quantize_down(self, p: float) -> float:
        """Round ``p`` down to the grid (conservative)."""
        return self._values[self.floor_index(p)]

    # ------------------------------------------------------------- queries
    def indices(self) -> range:
        """All grid indices."""
        return range(len(self._values))

    def values(self) -> List[float]:
        """All grid values, ascending."""
        return list(self._values)

    @property
    def top_index(self) -> int:
        """Index of the value 1.0 (the last grid entry)."""
        return len(self._values) - 1

    @property
    def resolution(self) -> int:
        """Number of grid intervals (``len(grid) - 1``)."""
        return len(self._values) - 1

    @property
    def spacing(self) -> float:
        """The largest gap between adjacent grid values (error bound)."""
        return max(
            b - a for a, b in zip(self._values, self._values[1:])
        )

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProbabilityGrid(n={len(self._values)}, max_gap={self.spacing:.4g})"
