"""Random test point placement — the sanity-check baseline.

Inserts points at uniformly random sites/flavors until the instance becomes
feasible or a budget is exhausted.  Any serious method must beat this; the
evaluation uses it to calibrate how much structure the DP and the greedy
heuristic actually exploit.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple

from ..resilience import Budget
from ..sim.faults import Fault, testable_stuck_at_faults
from .problem import TestPoint, TestPointType, TPIProblem, TPISolution
from .virtual import evaluate_placement

__all__ = ["solve_random"]


def solve_random(
    problem: TPIProblem,
    faults: Optional[Sequence[Fault]] = None,
    seed: int = 0,
    max_point_budget: int = 200,
    budget: Optional[Budget] = None,
) -> TPISolution:
    """Insert uniformly random test points until feasible (or budget out).

    Feasibility is re-checked after every insertion so the reported cost is
    the cost at first feasibility, comparable with the other solvers.
    ``budget``'s wall clock, when given, is checked once per attempt.
    """
    if faults is None:
        faults = testable_stuck_at_faults(problem.circuit)
    rng = random.Random(seed)
    sites = list(problem.circuit.node_names)
    kinds = list(problem.allowed_types)
    points: List[TestPoint] = []
    controlled: Set[str] = set()
    observed: Set[str] = set()
    feasible = False
    attempts = 0

    point_budget = max_point_budget
    if problem.max_points is not None:
        point_budget = min(point_budget, problem.max_points)

    # Every wire takes at most one control point and one observation
    # point, so the pool of distinct placements is finite — stop once it
    # is exhausted (or the instance would loop forever when infeasible).
    max_distinct = 2 * len(sites)
    while len(points) < min(point_budget, max_distinct):
        if budget is not None:
            budget.tick("random.attempt")
        if evaluate_placement(problem, points).is_feasible(faults):
            feasible = True
            break
        attempts += 1
        if attempts > 50 * max_distinct:
            break  # saturated under a restricted type set
        site = rng.choice(sites)
        kind = rng.choice(kinds)
        if kind is TestPointType.OBSERVATION:
            if site in observed:
                continue
            observed.add(site)
        else:
            if site in controlled:
                continue
            controlled.add(site)
        points.append(TestPoint(site, kind))
        if len(observed) == len(sites) and len(controlled) == len(sites):
            break  # placement pool exhausted
    if not feasible:
        feasible = evaluate_placement(problem, points).is_feasible(faults)

    return TPISolution(
        points=points,
        cost=problem.costs.total(points),
        feasible=feasible,
        method="random",
        stats={"attempts": float(attempts), "seed": float(seed)},
    )
