"""End-to-end evaluation: select points → insert hardware → fault simulate.

This closes the loop the paper's evaluation closes: analytical planning is
validated by *measured* fault coverage of the physically modified netlist
under a real pseudo-random pattern budget.  Coverage is reported on the
original circuit's collapsed fault list, translated through the insertion
fault map (test hardware is assumed fault-free).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..circuit.netlist import Circuit
from ..sim.fault_sim import FaultSimulator
from ..sim.faults import Fault, collapse_faults
from ..sim.parallel import run_parallel
from ..sim.patterns import PatternSource, UniformRandomSource
from .problem import TestPoint, TPIProblem, TPISolution
from .test_points import apply_test_points

__all__ = ["CoverageReport", "measure_coverage", "evaluate_solution"]


@dataclass
class CoverageReport:
    """Measured before/after coverage of a placement.

    Attributes
    ----------
    circuit_name:
        Name of the evaluated circuit.
    n_patterns:
        Pattern budget applied to both netlists.
    n_faults:
        Size of the collapsed reference fault list.
    baseline_coverage / modified_coverage:
        Measured coverage before and after insertion.
    baseline_curve / modified_curve:
        Cumulative ``(patterns, coverage)`` series (log-spaced).
    n_control / n_observation:
        Placement composition.
    solution:
        The placement that was inserted.
    """

    circuit_name: str
    n_patterns: int
    n_faults: int
    baseline_coverage: float
    modified_coverage: float
    baseline_curve: List[Tuple[int, float]] = field(default_factory=list)
    modified_curve: List[Tuple[int, float]] = field(default_factory=list)
    n_control: int = 0
    n_observation: int = 0
    solution: Optional[TPISolution] = None

    @property
    def coverage_gain(self) -> float:
        """Absolute coverage improvement delivered by the placement."""
        return self.modified_coverage - self.baseline_coverage

    def row(self) -> str:
        """One formatted table row (used by the benchmark harness)."""
        return (
            f"{self.circuit_name:14s} {self.n_faults:6d} "
            f"{self.n_control:4d} {self.n_observation:4d} "
            f"{100 * self.baseline_coverage:8.2f} "
            f"{100 * self.modified_coverage:8.2f} "
            f"{100 * self.coverage_gain:+7.2f}"
        )


def measure_coverage(
    circuit: Circuit,
    n_patterns: int,
    source: Optional[PatternSource] = None,
    faults: Optional[Sequence[Fault]] = None,
    jobs: int = 1,
    mode: str = "exact",
    kernel: Optional[str] = None,
):
    """Fault-simulate ``circuit`` under a pseudo-random budget.

    Returns the :class:`~repro.sim.fault_sim.FaultSimResult` over the
    collapsed fault list (or ``faults`` when given).  ``jobs > 1`` fans the
    fault list out over worker processes; ``mode="coverage"`` enables fault
    dropping (partial detection words, exact coverage and first-detects);
    ``kernel`` selects compiled (default) or interpreted simulation.
    All three knobs preserve bit-identical coverage numbers.
    """
    source = source or UniformRandomSource(seed=1)
    stimulus = source.generate(circuit.inputs, n_patterns)
    if jobs > 1 or mode != "exact":
        return run_parallel(
            circuit, stimulus, n_patterns, faults=faults, jobs=jobs,
            mode=mode, kernel=kernel,
        )
    sim = FaultSimulator(circuit, kernel=kernel)
    return sim.run(stimulus, n_patterns, faults=faults)


def evaluate_solution(
    problem: TPIProblem,
    solution: TPISolution,
    n_patterns: int,
    source: Optional[PatternSource] = None,
    jobs: int = 1,
    mode: str = "exact",
    kernel: Optional[str] = None,
) -> CoverageReport:
    """Insert the solution's points and measure real coverage before/after.

    The same pattern source drives both runs; the modified netlist's extra
    test-signal inputs receive stimulus from the same source family.
    ``jobs``/``mode``/``kernel`` are forwarded to :func:`measure_coverage`
    for both runs; the report's numbers are identical for every setting.
    """
    source = source or UniformRandomSource(seed=1)
    circuit = problem.circuit
    collapsed = collapse_faults(circuit)
    reference = collapsed.representatives

    baseline = measure_coverage(
        circuit, n_patterns, source, faults=reference, jobs=jobs, mode=mode,
        kernel=kernel,
    )

    with obs.span(
        "insert", circuit=circuit.name, points=len(solution.points)
    ):
        insertion = apply_test_points(circuit, solution.points)
    obs.count("insert.points", len(solution.points))
    mapped_pairs = [
        (f, insertion.fault_map[f]) for f in reference
    ]
    live = [m for _o, m in mapped_pairs if m is not None]
    stimulus = source.generate(insertion.circuit.inputs, n_patterns)
    if jobs > 1 or mode != "exact":
        modified = run_parallel(
            insertion.circuit,
            stimulus,
            n_patterns,
            faults=live,
            jobs=jobs,
            mode=mode,
            kernel=kernel,
        )
    else:
        sim = FaultSimulator(insertion.circuit, kernel=kernel)
        modified = sim.run(stimulus, n_patterns, faults=live)

    # Coverage over the original reference list: faults whose injection
    # site vanished (random re-drives) count as undetected.
    detected = sum(
        1
        for _orig, m in mapped_pairs
        if m is not None and modified.detection_word[m]
    )
    modified_coverage = detected / len(reference) if reference else 1.0

    def mapped_curve() -> List[Tuple[int, float]]:
        curve = []
        for n, _cov in modified.coverage_curve():
            hit = sum(
                1
                for _orig, m in mapped_pairs
                if m is not None
                and modified.first_detect[m] is not None
                and modified.first_detect[m] < n
            )
            curve.append((n, hit / len(reference) if reference else 1.0))
        return curve

    return CoverageReport(
        circuit_name=circuit.name,
        n_patterns=n_patterns,
        n_faults=len(reference),
        baseline_coverage=baseline.coverage(),
        modified_coverage=modified_coverage,
        baseline_curve=baseline.coverage_curve(),
        modified_curve=mapped_curve(),
        n_control=len(solution.control_points()),
        n_observation=len(solution.observation_points()),
        solution=solution,
    )
