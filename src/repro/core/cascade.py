"""Graceful solver degradation: exhaustive → dp → greedy → random.

General TPI is NP-complete, so the expensive solvers carry cooperative
budgets (:mod:`repro.resilience`) — and a budget running out must not
abort the pipeline.  :func:`solve_with_fallback` runs a cascade of solvers
from most to least precise; when a stage raises
:class:`~repro.errors.BudgetExceededError` (or a
:class:`~repro.errors.SolverError` precondition failure, e.g. handing the
exact tree DP a reconvergent circuit), the cascade records the degradation
as a ``solver_fallback`` obs event plus a ``cascade.fallbacks`` counter
and moves to the next cheaper stage with a *fresh* budget clock.

Only when the **last** stage also fails does the error propagate — at that
point the instance genuinely does not fit the budget and the caller (CLI
exit code 3, or the sweep runner's per-circuit isolation) decides what to
do with the fact.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from .. import obs
from ..errors import BudgetExceededError, SolverError
from ..resilience import Budget
from .exhaustive import solve_exhaustive
from .greedy import solve_greedy
from .heuristic import solve_dp_heuristic
from .problem import TPIProblem, TPISolution
from .random_placement import solve_random

__all__ = ["SOLVER_CASCADE", "DEFAULT_CASCADE", "solve_with_fallback"]

#: Every cascade stage, most precise first.
SOLVER_CASCADE: Tuple[str, ...] = ("exhaustive", "dp", "greedy", "random")

#: The production default: exhaustive search is opt-in (tiny instances only).
DEFAULT_CASCADE: Tuple[str, ...] = ("dp", "greedy", "random")

_Stage = Callable[[TPIProblem, Optional[Budget]], TPISolution]

_STAGES: Dict[str, _Stage] = {
    "exhaustive": lambda p, b: solve_exhaustive(p, budget=b),
    "dp": lambda p, b: solve_dp_heuristic(p, budget=b),
    "greedy": lambda p, b: solve_greedy(p, budget=b),
    "random": lambda p, b: solve_random(p, budget=b),
}


def solve_with_fallback(
    problem: TPIProblem,
    solvers: Sequence[str] = DEFAULT_CASCADE,
    budget: Optional[Budget] = None,
) -> TPISolution:
    """Solve ``problem``, degrading to cheaper solvers on budget failure.

    Parameters
    ----------
    problem:
        The TPI instance.
    solvers:
        Stage names (subset of :data:`SOLVER_CASCADE`), tried in order.
    budget:
        Cooperative limits.  Each stage receives a **fresh clock** with the
        same limits (:meth:`~repro.resilience.Budget.renewed`), so a stage
        that times out does not starve the cheaper stages behind it.

    Returns the first stage's solution that completes; its ``stats`` gain
    ``fallbacks`` (stages skipped over) and the solution's ``method`` is
    the stage that actually produced it.  Raises the final stage's
    :class:`~repro.errors.BudgetExceededError` / ``SolverError`` when every
    stage fails.
    """
    if not solvers:
        raise SolverError("solver cascade must name at least one solver")
    unknown = [s for s in solvers if s not in _STAGES]
    if unknown:
        raise SolverError(
            f"unknown cascade stages {unknown}; choose from {list(_STAGES)}"
        )

    circuit_name = problem.circuit.name
    for index, name in enumerate(solvers):
        stage_budget = budget.renewed() if budget is not None else None
        try:
            with obs.span(
                "cascade.stage", solver=name, circuit=circuit_name
            ) as sp:
                solution = _STAGES[name](problem, stage_budget)
                sp.set(cost=solution.cost, feasible=solution.feasible)
        except (BudgetExceededError, SolverError) as exc:
            obs.count("cascade.fallbacks")
            obs.count(f"cascade.fallbacks.{name}")
            if index + 1 >= len(solvers):
                # Cascade exhausted: the failure is now the caller's.
                obs.event(
                    "cascade_exhausted",
                    circuit=circuit_name,
                    solver=name,
                    error=type(exc).__name__,
                    reason=str(exc),
                )
                raise
            obs.event(
                "solver_fallback",
                circuit=circuit_name,
                from_solver=name,
                to_solver=solvers[index + 1],
                error=type(exc).__name__,
                resource=getattr(exc, "resource", None),
                reason=str(exc),
            )
            continue
        solution.stats["fallbacks"] = float(index)
        # Runtime-lazy: repro.verify imports solver modules.  The "dp"
        # cascade stage is solve_dp_heuristic (method "dp-heuristic",
        # continuous feasibility), so the generic certification applies to
        # every stage; true method="dp" solves certify inside solve_tree.
        from ..verify.certify import maybe_certify

        return maybe_certify(problem, solution)
    raise AssertionError("unreachable: cascade neither returned nor raised")
