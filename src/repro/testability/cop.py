"""COP testability measures: signal probabilities and observabilities.

COP (Controllability/Observability Program, Brglez 1984) propagates
probabilities through the netlist under an independence assumption:

* **1-controllability** ``p(n) = P[n = 1]`` moves forward from the inputs
  (exact on fanout-free circuits, approximate across reconvergence);
* **observability** ``obs(n) = P[a value change on n reaches an observed
  output]`` moves backward from the outputs, multiplying per-gate
  sensitization probabilities.

These are the probability semantics the paper's dynamic program optimizes
over, and the guidance signal for the greedy baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..circuit.gates import (
    GateType,
    output_probability,
    side_input_sensitization_probability,
)
from ..circuit.netlist import Circuit
from ..sim.backend import get_backend
from ..sim.compile import get_compiled, resolve_kernel

__all__ = ["COPResult", "signal_probabilities", "observabilities", "cop_measures"]

#: How multiple fanout-branch observabilities combine at a stem.
_STEM_COMBINE_MODES = ("or", "max")


@dataclass
class COPResult:
    """Complete COP analysis of one circuit.

    Attributes
    ----------
    probability:
        Map node → P[node = 1].
    observability:
        Map node → stem observability.
    branch_observability:
        Map ``(driver, sink, pin)`` → observability of that fanout branch.
    """

    probability: Dict[str, float] = field(default_factory=dict)
    observability: Dict[str, float] = field(default_factory=dict)
    branch_observability: Dict[Tuple[str, str, int], float] = field(
        default_factory=dict
    )

    def zero_controllability(self, node: str) -> float:
        """P[node = 0] (complement of the stored 1-probability)."""
        return 1.0 - self.probability[node]

    def one_controllability(self, node: str) -> float:
        """P[node = 1]."""
        return self.probability[node]


def signal_probabilities(
    circuit: Circuit,
    input_probabilities: Optional[Mapping[str, float]] = None,
    overrides: Optional[Mapping[str, float]] = None,
    kernel: Optional[str] = None,
) -> Dict[str, float]:
    """Forward COP pass: P[node = 1] for every node.

    Parameters
    ----------
    input_probabilities:
        P[input = 1] per primary input (default 0.5 — the fair
        pseudo-random source).
    overrides:
        Nodes whose probability is *forced* (used to model control points:
        a scan-driven CP forces 0.5, an AND-type CP in test mode forces 0).
        Overrides win over computed values and are propagated downstream.
    kernel:
        Simulation backend for the override-free pass — ``"compiled"``
        (default) or ``"numpy"``; ``"interp"`` forces the interpreted
        walk.  Runs with ``overrides`` always interpret.  All backends
        produce bit-identical floats.
    """
    input_probabilities = input_probabilities or {}
    overrides = overrides or {}
    if not overrides:
        runner = get_backend(kernel).cop_forward_runner(circuit)
        if runner is not None:
            return runner(input_probabilities.get)
    probs: Dict[str, float] = {}
    for name in circuit.topological_order():
        if name in overrides:
            probs[name] = float(overrides[name])
            continue
        node = circuit.node(name)
        if node.is_input:
            probs[name] = float(input_probabilities.get(name, 0.5))
        else:
            probs[name] = output_probability(
                node.gate_type, [probs[fi] for fi in node.fanins]
            )
    return probs


def observabilities(
    circuit: Circuit,
    probability: Mapping[str, float],
    observed: Optional[Mapping[str, float]] = None,
    stem_combine: str = "or",
    kernel: Optional[str] = None,
) -> Tuple[Dict[str, float], Dict[Tuple[str, str, int], float]]:
    """Backward COP pass: node and branch observabilities.

    Parameters
    ----------
    probability:
        Forward probabilities from :func:`signal_probabilities`.
    observed:
        Map node → direct observability injected at that node.  Primary
        outputs implicitly get 1.0; observation points are modeled by
        passing ``{op_node: 1.0}``.
    stem_combine:
        ``"or"`` combines branch observabilities as independent events
        (``1 - Π(1 - o_i)``, the classic COP rule); ``"max"`` uses the
        most observable branch (a safe lower bound under reconvergence).

    Returns
    -------
    (node_obs, branch_obs):
        ``node_obs[n]`` is the stem observability; ``branch_obs[(d, s, p)]``
        the observability of the branch from driver ``d`` into pin ``p`` of
        sink ``s``.

    ``kernel`` selects the simulation backend for the backward pass
    (compiled kernel or numpy sweep) or the interpreted walk; runs with
    ``observed`` injections always interpret.
    """
    if stem_combine not in _STEM_COMBINE_MODES:
        raise ValueError(f"stem_combine must be one of {_STEM_COMBINE_MODES}")
    observed = observed or {}
    if not observed:
        runner = get_backend(kernel).cop_backward_runner(circuit, stem_combine)
        if runner is not None:
            return runner(probability)
    out_set = set(circuit.outputs)
    node_obs: Dict[str, float] = {}
    branch_obs: Dict[Tuple[str, str, int], float] = {}

    for name in reversed(circuit.topological_order()):
        direct = float(observed.get(name, 0.0))
        if name in out_set:
            direct = 1.0
        contributions = [direct] if direct > 0.0 else []
        for sink, pin in circuit.fanouts(name):
            sink_node = circuit.node(sink)
            side_probs = [
                probability[fi]
                for p, fi in enumerate(sink_node.fanins)
                if p != pin
            ]
            transfer = side_input_sensitization_probability(
                sink_node.gate_type, side_probs
            )
            b_obs = node_obs[sink] * transfer
            branch_obs[(name, sink, pin)] = b_obs
            contributions.append(b_obs)
        if not contributions:
            node_obs[name] = 0.0
        elif stem_combine == "max":
            node_obs[name] = max(contributions)
        else:
            escape = 1.0
            for c in contributions:
                escape *= 1.0 - c
            node_obs[name] = 1.0 - escape
    return node_obs, branch_obs


def cop_measures(
    circuit: Circuit,
    input_probabilities: Optional[Mapping[str, float]] = None,
    probability_overrides: Optional[Mapping[str, float]] = None,
    observed: Optional[Mapping[str, float]] = None,
    stem_combine: str = "or",
    kernel: Optional[str] = None,
    guard=None,
) -> COPResult:
    """Run both COP passes and return a :class:`COPResult`.

    ``guard`` (or an ambient :class:`repro.verify.GuardedSession`)
    shadow-re-runs a sampled fraction of compiled-kernel results through
    the interpreted passes and raises
    :class:`~repro.errors.DivergenceError` on mismatch.
    """
    probs = signal_probabilities(
        circuit, input_probabilities, overrides=probability_overrides,
        kernel=kernel,
    )
    node_obs, branch_obs = observabilities(
        circuit, probs, observed=observed, stem_combine=stem_combine,
        kernel=kernel,
    )
    result = COPResult(
        probability=probs,
        observability=node_obs,
        branch_observability=branch_obs,
    )
    # Overrides / pre-observed maps force the interpreted passes anyway;
    # only shadow-check when at least one pass actually ran a fast
    # backend (compiled kernel or numpy sweep).  Falsiness, not None:
    # an *empty* override map still takes the fast path.
    if resolve_kernel(kernel) != "interp" and (
        not probability_overrides or not observed
    ):
        _shadow_check_cop(
            circuit, input_probabilities, probability_overrides, observed,
            stem_combine, result, guard, resolve_kernel(kernel),
        )
    return result


def _shadow_check_cop(
    circuit: Circuit,
    input_probabilities,
    probability_overrides,
    observed,
    stem_combine: str,
    result: COPResult,
    guard,
    kernel: str = "compiled",
) -> None:
    """Sampled shadow re-run of a fast-backend COP result via the interpreter."""
    # Runtime-lazy: repro.verify imports this module's package siblings.
    from ..verify.guard import active_guard

    g = active_guard(guard)
    if g is None or not g.should_check():
        return
    arbiter = cop_measures(
        circuit,
        input_probabilities,
        probability_overrides=probability_overrides,
        observed=observed,
        stem_combine=stem_combine,
        kernel="interp",
    )

    def payload(res: COPResult) -> dict:
        return {
            "probability": res.probability,
            "observability": res.observability,
            "branch_observability": res.branch_observability,
        }

    sources = {}
    if kernel == "compiled":
        entry = get_compiled(circuit)
        sources = {
            key: src
            for key, src in entry.sources.items()
            if key == "cop_fwd" or key.startswith("cop_bwd:")
        }
    g.confirm(
        "cop.measures",
        expected=payload(arbiter),
        actual=payload(result),
        circuit=circuit,
        context={
            "input_probabilities": (
                dict(input_probabilities) if input_probabilities else None
            ),
            "stem_combine": stem_combine,
            "has_overrides": probability_overrides is not None,
            "has_observed": observed is not None,
            "kernel": kernel,
        },
        sources=sources,
        message=f"{kernel} COP passes disagree with the interpreted passes",
    )
