"""SCOAP testability measures (Goldstein 1979).

SCOAP assigns integer effort measures: ``CC0``/``CC1`` — the number of
circuit lines that must be set to justify a 0/1 on a node — and ``CO`` —
the effort to propagate a node to an observed output.  They are the
deterministic cousins of COP's probabilities and serve here as an
alternative candidate-ranking signal and as a cross-check in the analysis
reports (high SCOAP ⇔ low COP detectability, loosely).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit

__all__ = ["SCOAPResult", "scoap_measures"]

#: Effective infinity for unreachable values.
INF = 10**9


@dataclass
class SCOAPResult:
    """Combinational SCOAP measures for one circuit.

    Attributes
    ----------
    cc0, cc1:
        Controllability of 0/1 per node (primary inputs cost 1).
    co:
        Observability per node (primary outputs cost 0).
    """

    cc0: Dict[str, int] = field(default_factory=dict)
    cc1: Dict[str, int] = field(default_factory=dict)
    co: Dict[str, int] = field(default_factory=dict)

    def testability(self, node: str, stuck_value: int) -> int:
        """SCOAP detection effort of a stuck-at fault: CC(v̄) + CO."""
        excite = self.cc1[node] if stuck_value == 0 else self.cc0[node]
        return excite + self.co[node]


def _gate_cc(gate_type: GateType, cc0s, cc1s) -> Tuple[int, int]:
    """Return (CC0, CC1) of a gate output from its input measures."""
    if gate_type is GateType.AND:
        return min(cc0s) + 1, sum(cc1s) + 1
    if gate_type is GateType.NAND:
        return sum(cc1s) + 1, min(cc0s) + 1
    if gate_type is GateType.OR:
        return sum(cc0s) + 1, min(cc1s) + 1
    if gate_type is GateType.NOR:
        return min(cc1s) + 1, sum(cc0s) + 1
    if gate_type is GateType.NOT:
        return cc1s[0] + 1, cc0s[0] + 1
    if gate_type is GateType.BUF:
        return cc0s[0] + 1, cc1s[0] + 1
    if gate_type in (GateType.XOR, GateType.XNOR):
        # Cheapest way to justify each output parity over all input
        # combinations with that parity.
        n = len(cc0s)
        best = {0: INF, 1: INF}
        for combo in range(1 << n):
            cost = 0
            ones = 0
            for i in range(n):
                if (combo >> i) & 1:
                    cost += cc1s[i]
                    ones += 1
                else:
                    cost += cc0s[i]
            parity = ones & 1
            if gate_type is GateType.XNOR:
                parity ^= 1
            best[parity] = min(best[parity], cost)
        return best[0] + 1, best[1] + 1
    if gate_type is GateType.CONST0:
        return 1, INF
    if gate_type is GateType.CONST1:
        return INF, 1
    raise ValueError(f"unknown gate type {gate_type!r}")


def scoap_measures(circuit: Circuit) -> SCOAPResult:
    """Compute combinational SCOAP CC0/CC1/CO for every node."""
    res = SCOAPResult()
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.is_input:
            res.cc0[name], res.cc1[name] = 1, 1
            continue
        cc0s = [res.cc0[fi] for fi in node.fanins]
        cc1s = [res.cc1[fi] for fi in node.fanins]
        cc0, cc1 = _gate_cc(node.gate_type, cc0s, cc1s)
        res.cc0[name] = min(cc0, INF)
        res.cc1[name] = min(cc1, INF)

    out_set = set(circuit.outputs)
    for name in reversed(circuit.topological_order()):
        best = 0 if name in out_set else INF
        for sink, pin in circuit.fanouts(name):
            sink_node = circuit.node(sink)
            gt = sink_node.gate_type
            side_cost = 0
            for p, fi in enumerate(sink_node.fanins):
                if p == pin:
                    continue
                if gt in (GateType.AND, GateType.NAND):
                    side_cost += res.cc1[fi]
                elif gt in (GateType.OR, GateType.NOR):
                    side_cost += res.cc0[fi]
                else:  # XOR/XNOR side inputs just need any value: min cost
                    side_cost += min(res.cc0[fi], res.cc1[fi])
            candidate = res.co.get(sink, INF)
            if candidate < INF:
                candidate = candidate + side_cost + 1
            best = min(best, candidate)
        res.co[name] = min(best, INF)
    return res
