"""Test length ↔ detection probability ↔ confidence arithmetic.

The bridge between the DP's threshold parameter θ and the BIST-level
quantities an engineer actually specifies (pattern count N, escape
probability ε):

* a fault with per-pattern detection probability ``d`` escapes ``N``
  independent patterns with probability ``(1 - d)**N``;
* requiring escape ≤ ε for every fault yields the threshold
  ``θ = 1 - ε**(1/N)``;
* conversely the test length needed for a fault of probability ``d`` is
  ``N = ln ε / ln(1 - d)``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping

from ..sim.faults import Fault

__all__ = [
    "escape_probability",
    "required_test_length",
    "required_threshold",
    "expected_coverage",
    "test_length_for_fault_set",
]


def escape_probability(detection_probability: float, n_patterns: int) -> float:
    """Probability a fault escapes ``n_patterns`` random patterns."""
    if not 0.0 <= detection_probability <= 1.0:
        raise ValueError("detection probability must lie in [0, 1]")
    if n_patterns < 0:
        raise ValueError("pattern count cannot be negative")
    return (1.0 - detection_probability) ** n_patterns


def required_test_length(detection_probability: float, confidence: float) -> float:
    """Patterns needed to detect a fault with probability ≥ ``confidence``.

    Returns ``inf`` for undetectable faults (d == 0) and 0 for d == 1.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly in (0, 1)")
    d = detection_probability
    if d <= 0.0:
        return math.inf
    if d >= 1.0:
        return 0.0
    return math.log(1.0 - confidence) / math.log(1.0 - d)


def required_threshold(n_patterns: int, escape_budget: float) -> float:
    """Detection-probability threshold θ such that escape ≤ ``escape_budget``.

    A fault meeting ``d ≥ θ`` escapes ``n_patterns`` patterns with
    probability at most ``escape_budget``.  This is how the evaluation maps
    "32k patterns, 0.1% escape" onto the DP's θ parameter.
    """
    if n_patterns < 1:
        raise ValueError("need at least one pattern")
    if not 0.0 < escape_budget < 1.0:
        raise ValueError("escape budget must lie strictly in (0, 1)")
    return 1.0 - escape_budget ** (1.0 / n_patterns)


def expected_coverage(
    detection_probabilities: Mapping[Fault, float], n_patterns: int
) -> float:
    """Expected fault coverage of ``n_patterns`` random patterns.

    Sums per-fault detection probabilities ``1 - (1-d)**N`` — the standard
    analytic coverage prediction compared against measured coverage in the
    experiment tables.
    """
    if not detection_probabilities:
        return 1.0
    total = sum(
        1.0 - escape_probability(d, n_patterns)
        for d in detection_probabilities.values()
    )
    return total / len(detection_probabilities)


def test_length_for_fault_set(
    detection_probabilities: Mapping[Fault, float], confidence: float
) -> float:
    """Patterns needed so *every* fault is detected with ``confidence``.

    Driven by the hardest fault; ``inf`` when any fault has d == 0.
    """
    if not detection_probabilities:
        return 0.0
    return max(
        required_test_length(d, confidence)
        for d in detection_probabilities.values()
    )
