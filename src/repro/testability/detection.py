"""Per-fault detection probability estimation and RPR fault identification.

The detection probability of stuck-at-``v`` on wire ``w`` under one random
pattern is modeled as ``P[w = v̄] · obs(w)`` — excitation times propagation,
with both factors taken from COP (:mod:`repro.testability.cop`).  On
fanout-free circuits this is exact; with reconvergence it is the standard
COP approximation the paper's framework (and its successors) accepted.

A fault is **random-pattern resistant (RPR)** at test length ``N`` and
escape budget ``ε`` when its detection probability falls below the
threshold θ(N, ε) of :func:`repro.testability.testlength.required_threshold`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..circuit.netlist import Circuit
from ..sim.faults import Fault, all_stuck_at_faults
from .cop import COPResult, cop_measures

__all__ = [
    "fault_detection_probability",
    "detection_probabilities",
    "random_pattern_resistant_faults",
    "worst_fault",
]


def fault_detection_probability(fault: Fault, cop: COPResult) -> float:
    """Detection probability of one fault under the COP model."""
    p1 = cop.probability[fault.node]
    excitation = (1.0 - p1) if fault.value == 1 else p1
    if fault.branch is None:
        obs = cop.observability[fault.node]
    else:
        sink, pin = fault.branch
        obs = cop.branch_observability[(fault.node, sink, pin)]
    return excitation * obs


def detection_probabilities(
    circuit: Circuit,
    faults: Optional[Sequence[Fault]] = None,
    cop: Optional[COPResult] = None,
) -> Dict[Fault, float]:
    """Detection probability for each fault (default: full fault list)."""
    if cop is None:
        cop = cop_measures(circuit)
    if faults is None:
        faults = all_stuck_at_faults(circuit)
    return {f: fault_detection_probability(f, cop) for f in faults}


def random_pattern_resistant_faults(
    circuit: Circuit,
    threshold: float,
    faults: Optional[Sequence[Fault]] = None,
    cop: Optional[COPResult] = None,
) -> List[Fault]:
    """Faults whose detection probability falls below ``threshold``."""
    probs = detection_probabilities(circuit, faults=faults, cop=cop)
    return [f for f, d in probs.items() if d < threshold]


def worst_fault(probs: Mapping[Fault, float]) -> Fault:
    """The hardest fault (minimum detection probability; ties by order)."""
    if not probs:
        raise ValueError("empty fault-probability map")
    return min(probs, key=lambda f: (probs[f], f))
