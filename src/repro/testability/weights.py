"""Weighted-random pattern optimization (the pattern-side alternative).

Before (and alongside) test point insertion, the standard answer to
random-pattern resistance was to *bias the inputs*: drive each primary
input with probability ``w_i`` instead of 1/2, chosen to maximize expected
coverage.  This module implements the classic coordinate-ascent weight
optimizer over the COP detection model:

* start from the fair assignment ``w = 0.5``;
* sweep the inputs, trying a small palette of weights per input and
  keeping the best (expected coverage under the analytic model);
* repeat until a sweep yields no improvement.

Weighted random fixes *excitation-only* resistance (wide AND/OR cones)
but cannot create correlations between inputs — which is exactly where
test point insertion wins (experiment E5 stages that comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.netlist import Circuit
from ..sim.faults import Fault, testable_stuck_at_faults
from .cop import cop_measures
from .detection import detection_probabilities
from .testlength import expected_coverage

__all__ = ["WeightOptimizationResult", "optimize_weights"]

#: The weight palette of the classic schemes (coarse on purpose: hardware
#: weight generators offered a few dyadic levels).
DEFAULT_PALETTE: Tuple[float, ...] = (0.125, 0.25, 0.5, 0.75, 0.875)


@dataclass
class WeightOptimizationResult:
    """Outcome of the coordinate-ascent weight search.

    Attributes
    ----------
    weights:
        Chosen P[input = 1] per primary input.
    expected_coverage:
        Predicted coverage at the profiled pattern budget.
    baseline_expected_coverage:
        Predicted coverage of the fair (all-0.5) assignment.
    sweeps:
        Coordinate sweeps executed.
    """

    weights: Dict[str, float] = field(default_factory=dict)
    expected_coverage: float = 0.0
    baseline_expected_coverage: float = 0.0
    sweeps: int = 0

    @property
    def gain(self) -> float:
        """Predicted coverage improvement over fair weights."""
        return self.expected_coverage - self.baseline_expected_coverage

    def biased_inputs(self) -> List[Tuple[str, float]]:
        """Inputs moved away from 0.5, most skewed first."""
        moved = [
            (name, w) for name, w in self.weights.items() if w != 0.5
        ]
        moved.sort(key=lambda nw: (-abs(nw[1] - 0.5), nw[0]))
        return moved


def optimize_weights(
    circuit: Circuit,
    n_patterns: int,
    faults: Optional[Sequence[Fault]] = None,
    palette: Sequence[float] = DEFAULT_PALETTE,
    max_sweeps: int = 5,
) -> WeightOptimizationResult:
    """Coordinate-ascent input weight optimization under the COP model.

    Parameters
    ----------
    n_patterns:
        Pattern budget the expected coverage is evaluated at.
    faults:
        Objective fault set (default: structurally testable faults).
    palette:
        Candidate weights per input.
    max_sweeps:
        Maximum full passes over the inputs.
    """
    circuit.validate()
    if faults is None:
        faults = testable_stuck_at_faults(circuit)

    def predicted(weights: Dict[str, float]) -> float:
        cop = cop_measures(circuit, input_probabilities=weights)
        probs = detection_probabilities(circuit, faults=faults, cop=cop)
        return expected_coverage(probs, n_patterns)

    weights = {pi: 0.5 for pi in circuit.inputs}
    baseline = predicted(weights)
    best = baseline
    sweeps = 0
    for _ in range(max_sweeps):
        sweeps += 1
        improved = False
        for pi in circuit.inputs:
            original = weights[pi]
            best_w = original
            for w in palette:
                if w == original:
                    continue
                weights[pi] = w
                score = predicted(weights)
                if score > best + 1e-12:
                    best = score
                    best_w = w
            weights[pi] = best_w
            if best_w != original:
                improved = True
        if not improved:
            break

    return WeightOptimizationResult(
        weights=weights,
        expected_coverage=best,
        baseline_expected_coverage=baseline,
        sweeps=sweeps,
    )
