"""Testability analysis: COP probabilities, SCOAP measures, detection math."""

from .cop import COPResult, cop_measures, observabilities, signal_probabilities
from .detection import (
    detection_probabilities,
    fault_detection_probability,
    random_pattern_resistant_faults,
    worst_fault,
)
from .scoap import SCOAPResult, scoap_measures
from .weights import WeightOptimizationResult, optimize_weights
from .testlength import (
    escape_probability,
    expected_coverage,
    required_test_length,
    required_threshold,
    test_length_for_fault_set,
)

__all__ = [
    "COPResult",
    "cop_measures",
    "signal_probabilities",
    "observabilities",
    "SCOAPResult",
    "scoap_measures",
    "fault_detection_probability",
    "detection_probabilities",
    "random_pattern_resistant_faults",
    "worst_fault",
    "escape_probability",
    "required_test_length",
    "required_threshold",
    "expected_coverage",
    "test_length_for_fault_set",
    "WeightOptimizationResult",
    "optimize_weights",
]
