"""repro — dynamic-programming test point insertion, reproduced end to end.

A production-style reproduction of B. Krishnamurthy, *"A Dynamic
Programming Approach to the Test Point Insertion Problem"* (DAC 1987),
together with every substrate the system needs: a gate-level netlist model,
pattern-parallel logic and fault simulation, COP/SCOAP testability
analysis, and a benchmark circuit suite.

Quick start::

    from repro.circuit import benchmark
    from repro.core import TPIProblem, solve_tree, evaluate_solution

    circuit = benchmark("wand16")                 # fanout-free RPR circuit
    problem = TPIProblem.from_test_length(circuit, n_patterns=4096)
    solution = solve_tree(problem)                # the paper's DP
    report = evaluate_solution(problem, solution, n_patterns=4096)
    print(report.row())

Packages: :mod:`repro.circuit` (netlists), :mod:`repro.sim` (simulation),
:mod:`repro.testability` (COP/SCOAP), :mod:`repro.core` (the TPI
algorithms), :mod:`repro.analysis` (experiment harness), :mod:`repro.obs`
(structured tracing, metrics, and machine-readable run artifacts),
:mod:`repro.errors` / :mod:`repro.resilience` (error taxonomy, solve
budgets, graceful solver degradation).
"""

__version__ = "1.0.0"

from . import (
    analysis,
    atpg,
    bist,
    circuit,
    core,
    errors,
    obs,
    resilience,
    sim,
    testability,
)

__all__ = [
    "analysis",
    "atpg",
    "bist",
    "circuit",
    "core",
    "errors",
    "obs",
    "resilience",
    "sim",
    "testability",
    "__version__",
]
