"""Pattern-parallel stuck-at fault simulation with cone-restricted events.

For each fault the simulator re-evaluates only the fault's fanout cone (in
levelized order) against cached good-circuit values, with all patterns packed
into single integer words — i.e. single-fault propagation, all patterns in
parallel, the PPSFP-style organization classic fault simulators use.

Key outputs:

* per-fault **detection word** (bit ``p`` set iff pattern ``p`` detects);
* per-fault **first detecting pattern**, from which cumulative coverage
  curves (the figures of the evaluation) are derived;
* plain coverage numbers over a collapsed fault list.

Two run modes:

* :meth:`FaultSimulator.run` — exact: every fault sees every pattern, full
  detection words (needed by response compaction and detection-probability
  estimates);
* :meth:`FaultSimulator.run_coverage` — coverage-only with **fault
  dropping**: patterns are applied in blocks and a fault detected in one
  block is dropped from all later blocks.  First-detect indices stay exact;
  detection words become partial (only the first detecting block's bits).
"""

from __future__ import annotations

import heapq
import os
from bisect import bisect_left
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import obs
from ..circuit.gates import evaluate_gate
from ..circuit.netlist import Circuit
from ..errors import SimulationError
from ..resilience import Budget
from . import npsim
from .bitops import (
    ndarray_to_word,
    ones_mask,
    word_count,
)
from .compile import generate_cone_source, get_compiled, resolve_kernel
from .faults import CollapsedFaultSet, Fault, collapse_faults
from .logic_sim import LogicSimulator

__all__ = [
    "BatchPolicy",
    "DEFAULT_BATCH_POLICY",
    "FaultSimResult",
    "FaultSimulator",
    "fault_coverage",
]


@dataclass(frozen=True)
class BatchPolicy:
    """When and how the numpy kernel batches faults into one sweep.

    The fault-parallel batched pass re-evaluates the *whole circuit* per
    fault machine, trading inflated per-fault work for ufunc dispatch
    amortized across the whole batch.  This policy gathers the knobs
    that decide the trade; :data:`DEFAULT_BATCH_POLICY` (built by
    :meth:`from_env`) honours ``REPRO_NP_BATCH_*`` environment
    variables, and tests pin explicit instances instead of
    monkeypatching module constants.

    Attributes
    ----------
    min_faults:
        Below this many faults the sweep's fixed dispatch cost (one
        grouped full-circuit pass) is not worth amortizing
        (``REPRO_NP_BATCH_MIN_FAULTS``).
    min_capacity:
        Minimum fault machines per memory-budget chunk for the batch to
        pay: narrower chunks degenerate toward one full-circuit pass
        per fault (``REPRO_NP_BATCH_MIN_CAPACITY``).
    max_words:
        Widest pattern width (in 64-bit words) the batch accepts, or
        ``None`` for no cap — the default, since
        :func:`~repro.sim.npsim.propagate_batch` tiles the pattern axis
        under its memory budget, so wide-pattern runs keep the chunk
        capacity of narrow ones (``REPRO_NP_BATCH_MAX_WORDS``; the
        string ``none`` / ``0`` / empty also means uncapped).
    chunk_bytes:
        Memory budget per batched chunk, forwarded to
        :func:`~repro.sim.npsim.propagate_batch` and
        :func:`~repro.sim.npsim.batch_capacity`
        (``REPRO_NP_BATCH_CHUNK_BYTES``).
    """

    min_faults: int = 16
    min_capacity: int = 16
    max_words: Optional[int] = None
    chunk_bytes: int = npsim.BATCH_CHUNK_BYTES

    @classmethod
    def from_env(cls) -> "BatchPolicy":
        """A policy with any ``REPRO_NP_BATCH_*`` overrides applied."""

        def _int(name: str, default: int) -> int:
            raw = os.environ.get(name)
            try:
                return int(raw) if raw else default
            except ValueError:
                return default

        raw_words = os.environ.get("REPRO_NP_BATCH_MAX_WORDS", "")
        max_words: Optional[int] = None
        if raw_words and raw_words.lower() != "none":
            try:
                parsed = int(raw_words)
                max_words = parsed if parsed > 0 else None
            except ValueError:
                max_words = None
        return cls(
            min_faults=_int("REPRO_NP_BATCH_MIN_FAULTS", cls.min_faults),
            min_capacity=_int(
                "REPRO_NP_BATCH_MIN_CAPACITY", cls.min_capacity
            ),
            max_words=max_words,
            chunk_bytes=_int(
                "REPRO_NP_BATCH_CHUNK_BYTES", npsim.BATCH_CHUNK_BYTES
            ),
        )


#: Process-wide default policy (environment overrides applied at import).
DEFAULT_BATCH_POLICY = BatchPolicy.from_env()


@dataclass
class FaultSimResult:
    """Outcome of one fault-simulation run.

    Attributes
    ----------
    n_patterns:
        Number of patterns applied.
    detection_word:
        Map fault → packed word; bit ``p`` is 1 iff pattern ``p`` detects
        the fault at some primary output.  Under fault dropping
        (``coverage_only=True``) only the bits of the first detecting
        block are present — the word is still truthy iff detected.
    first_detect:
        Map fault → index of the first detecting pattern (``None`` if the
        fault escapes all patterns).  Exact in both run modes.
    coverage_only:
        True when the run used fault dropping, i.e. detection words are
        partial and per-pattern detection probabilities are unavailable.

    The result is treated as immutable once the run that built it returns:
    the detected count and the sorted first-detect indices are computed
    once and cached, so ``coverage()`` / ``coverage_at()`` /
    ``coverage_curve()`` cost O(1) / O(log F) per query instead of O(F).
    """

    n_patterns: int
    detection_word: Dict[Fault, int] = field(default_factory=dict)
    first_detect: Dict[Fault, Optional[int]] = field(default_factory=dict)
    coverage_only: bool = False
    _n_detected: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )
    _sorted_first: Optional[List[int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def faults(self) -> List[Fault]:
        """The simulated fault list."""
        return list(self.detection_word)

    def detected_faults(self) -> List[Fault]:
        """Faults detected by at least one pattern."""
        return [f for f, w in self.detection_word.items() if w]

    def undetected_faults(self) -> List[Fault]:
        """Faults that escaped every pattern."""
        return [f for f, w in self.detection_word.items() if not w]

    def n_detected(self) -> int:
        """Number of detected faults (cached after the first query)."""
        if self._n_detected is None:
            self._n_detected = sum(1 for w in self.detection_word.values() if w)
        return self._n_detected

    def coverage(self) -> float:
        """Fraction of faults detected (1.0 when the fault list is empty)."""
        if not self.detection_word:
            return 1.0
        return self.n_detected() / len(self.detection_word)

    def coverage_at(self, n: int) -> float:
        """Coverage after only the first ``n`` patterns."""
        if not self.detection_word:
            return 1.0
        if self._sorted_first is None:
            self._sorted_first = sorted(
                fd for fd in self.first_detect.values() if fd is not None
            )
        return bisect_left(self._sorted_first, n) / len(self.detection_word)

    def coverage_curve(
        self, checkpoints: Optional[Sequence[int]] = None
    ) -> List[Tuple[int, float]]:
        """Cumulative ``(pattern_count, coverage)`` series.

        Defaults to powers of two up to ``n_patterns`` (plus the endpoint),
        matching the log-x coverage plots of the BIST literature.
        """
        if checkpoints is None:
            checkpoints = []
            n = 1
            while n < self.n_patterns:
                checkpoints.append(n)
                n *= 2
            checkpoints.append(self.n_patterns)
        return [(n, self.coverage_at(n)) for n in checkpoints]

    def detection_probability(self, fault: Fault) -> float:
        """Empirical per-pattern detection probability of ``fault``.

        Requires full detection words, so it refuses coverage-only results.
        """
        if self.coverage_only:
            raise SimulationError(
                "detection_probability needs full detection words; "
                "this result came from a fault-dropping (coverage-only) run"
            )
        return self.detection_word[fault].bit_count() / self.n_patterns


class FaultSimulator:
    """Stuck-at fault simulator bound to one circuit.

    The good-circuit values are computed once per stimulus; each fault then
    re-evaluates only its fanout cone.

    ``guard`` (or an ambient :class:`repro.verify.GuardedSession`)
    shadow-re-executes a sampled fraction of compiled cone-kernel results
    through the interpreted event-driven walk and raises
    :class:`~repro.errors.DivergenceError` on any mismatch.
    """

    def __init__(
        self,
        circuit: Circuit,
        kernel: Optional[str] = None,
        guard=None,
        batch_policy: Optional[BatchPolicy] = None,
    ) -> None:
        circuit.validate()
        self.circuit = circuit
        self.kernel = resolve_kernel(kernel)
        self._guard = guard
        self.batch_policy = (
            batch_policy if batch_policy is not None else DEFAULT_BATCH_POLICY
        )
        # Runtime-lazy: repro.verify imports this module.
        from ..verify.guard import active_guard

        self._active_guard = active_guard
        self._revision = circuit.revision
        self._logic = LogicSimulator(circuit, kernel=self.kernel)
        self._compiled = (
            get_compiled(circuit) if self.kernel == "compiled" else None
        )
        self._np_plan = (
            npsim.get_plan(circuit) if self.kernel == "numpy" else None
        )
        # Single-slot identity cache: the packed-array form of the last
        # good-values mapping seen (parallel workers and dropping blocks
        # reuse one mapping across thousands of faults).
        self._np_state_cache: Optional[Tuple[object, int, object]] = None
        # start node -> (kernel fn, gate evals per invocation), one cache
        # per cone-kernel variant.
        self._cone_fns: Dict[str, Tuple[object, int]] = {}
        self._cone_diff_fns: Dict[str, Tuple[object, int]] = {}
        self._level = circuit.levels()
        self._out_set = set(circuit.outputs)
        # Flat per-node lookups for the propagation hot loop (the Circuit
        # accessors copy defensively, which costs on every visited gate).
        self._fanins: Dict[str, Tuple[str, ...]] = {}
        self._gate_types: Dict[str, object] = {}
        self._fanout_counts: Dict[str, int] = {}
        for name in circuit.topological_order():
            node = circuit.node(name)
            self._fanins[name] = tuple(node.fanins)
            self._gate_types[name] = node.gate_type
            self._fanout_counts[name] = circuit.fanout_count(name)
        self._masks: Dict[int, int] = {}
        # Every node's levelized fanout-cone order, built together in one
        # reverse-topological pass on first use (interp kernel); compiled
        # simulators cache the few they need site by site instead.
        self._cone_orders: Optional[Dict[str, List[str]]] = None
        self._single_cone_cache: Dict[str, List[str]] = {}
        #: Faulty-machine gate evaluations performed over this
        #: simulator's lifetime (each one is word-parallel over the
        #: pattern budget) — the unit of fault-sim throughput.
        self.gate_evals = 0

    # ------------------------------------------------------------------
    def _cone_order(self, start: str) -> List[str]:
        """Gates in the fanout cone of ``start``, levelized (incl. start)."""
        if self._cone_orders is not None:
            return self._cone_orders[start]
        if self.kernel != "compiled":
            # Interpreted and numpy runs walk a cone per collapsed fault —
            # nearly every site — so the one-pass all-nodes build
            # amortizes.
            self._cone_orders = self._build_cone_orders()
            return self._cone_orders[start]
        # Compiled-kernel simulators touch cone orders rarely (guard
        # shadow checks, registry misses): a per-site DFS is microseconds
        # while the all-nodes pass costs more than the whole warm run.
        order = self._single_cone_cache.get(start)
        if order is None:
            order = self._build_single_cone_order(start)
            self._single_cone_cache[start] = order
        return order

    def _build_single_cone_order(self, start: str) -> List[str]:
        """One node's levelized fanout-cone order, without the full pass."""
        level = self._level
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for sink, _pin in self.circuit.fanouts(node):
                if sink not in seen:
                    seen.add(sink)
                    stack.append(sink)
        seen.discard(start)
        return [start] + sorted(seen, key=lambda n: (level[n], n))

    def _build_cone_orders(self) -> Dict[str, List[str]]:
        """All cone orders at once, in a single reverse-topological pass.

        A node's order is itself followed by the level-sorted merge of its
        sinks' (already built) orders; merging sorted streams with a dedup
        of equal-key duplicates replaces the per-node DFS + sort the old
        cache paid on every distinct fault site.
        """
        level = self._level

        def key(name: str) -> Tuple[int, str]:
            return level[name], name

        orders: Dict[str, List[str]] = {}
        for name in reversed(self.circuit.topological_order()):
            sinks = sorted(
                {s for s, _pin in self.circuit.fanouts(name)}, key=key
            )
            order = [name]
            if sinks:
                last: Optional[str] = None
                # Duplicates share an exact (level, name) key, so the merge
                # emits them adjacently and the `last` check removes them.
                for member in heapq.merge(
                    *(orders[s] for s in sinks), key=key
                ):
                    if member != last:
                        order.append(member)
                        last = member
            orders[name] = order
        return orders

    def _cone_fn(self, start: str, variant: str) -> Tuple[object, int]:
        """Compiled cone kernel (and its gate-eval cost) for ``start``."""
        cache = self._cone_fns if variant == "detect" else self._cone_diff_fns
        entry = cache.get(start)
        if entry is None:
            compiled = self._compiled
            key = ("cone:" if variant == "detect" else "coneD:") + start

            def generate() -> str:
                source, n_gates = generate_cone_source(
                    self.circuit, start, self._cone_order(start), variant
                )
                compiled.cone_meta[key] = n_gates
                return source

            fn = compiled.function(key, generate)
            n_gates = compiled.cone_meta.get(key)
            if n_gates is None:  # seeded source without meta
                n_gates = len(self._cone_order(start)) - 1
            entry = cache[start] = (fn, n_gates)
        return entry

    def simulate_fault_responses(
        self,
        fault: Fault,
        good_values: Mapping[str, int],
        n_patterns: int,
    ) -> Dict[str, int]:
        """Per-output difference words of one fault.

        Returns a map primary output → packed word whose bit ``p`` is set
        iff the fault flips that output under pattern ``p`` (the faulty
        response is ``good ^ diff``).  Needed by response compaction, where
        *which* outputs flip decides whether a signature aliases.
        """
        diffs: Dict[str, int] = {po: 0 for po in self.circuit.outputs}
        self._propagate(fault, good_values, n_patterns, diffs)
        return diffs

    def simulate_fault(
        self,
        fault: Fault,
        good_values: Mapping[str, int],
        n_patterns: int,
    ) -> int:
        """Return the packed detection word of one fault.

        ``good_values`` must come from a prior fault-free :meth:`run` of the
        same stimulus (any node → word mapping covering the whole circuit).
        """
        return self._propagate(fault, good_values, n_patterns, None)

    def _propagate(
        self,
        fault: Fault,
        good_values: Mapping[str, int],
        n_patterns: int,
        output_diffs: Optional[Dict[str, int]],
    ) -> int:
        """Shared propagation kernel.

        Returns the combined detection word; when ``output_diffs`` is a
        dict it is additionally filled with per-output difference words.
        """
        self._check_revision()
        mask = self._masks.get(n_patterns)
        if mask is None:
            mask = self._masks[n_patterns] = ones_mask(n_patterns)

        # numpy path: injection, excitation check and straight-line cone
        # evaluation all stay in packed-array space — the int-word view is
        # only materialized when the Guard samples a shadow check.
        if self._np_plan is not None:
            return self._np_propagate(
                fault, good_values, n_patterns, mask, output_diffs
            )

        stuck_word = mask if fault.value else 0

        if fault.branch is None:
            start = fault.node
            if good_values[start] == stuck_word:
                return 0  # fault never excited anywhere
            injected = stuck_word
        else:
            start, pin = fault.branch
            fanin_words = [
                stuck_word if p == pin else good_values[fi]
                for p, fi in enumerate(self._fanins[start])
            ]
            injected = evaluate_gate(self._gate_types[start], fanin_words, mask)
            self.gate_evals += 1
            if injected == good_values[start]:
                return 0

        # Compiled path: straight-line evaluation of the whole cone.  A
        # gate the event-driven walk would skip computes its good value
        # and contributes a zero diff, so the detection words (and the
        # per-output diffs) are identical by construction.
        if self._compiled is not None:
            guard = self._active_guard(self._guard)
            if output_diffs is None:
                fn, n_gates = self._cone_fn(start, "detect")
                self.gate_evals += n_gates
                detect = fn(good_values, injected, mask)
                if guard is not None and guard.should_check():
                    self._shadow_check(
                        guard, fault, start, injected, good_values,
                        n_patterns, mask, detect, None,
                    )
                return detect
            fn, n_gates = self._cone_fn(start, "diffs")
            self.gate_evals += n_gates
            detect, diffs = fn(good_values, injected, mask)
            for po, diff in diffs:
                output_diffs[po] = diff
            if guard is not None and guard.should_check():
                self._shadow_check(
                    guard, fault, start, injected, good_values,
                    n_patterns, mask, detect, dict(output_diffs),
                )
            return detect

        return self._interp_propagate(
            start, injected, good_values, mask, output_diffs
        )

    def _check_revision(self) -> None:
        if self.circuit.revision != self._revision:
            raise SimulationError(
                f"circuit {self.circuit.name!r} was structurally modified "
                f"after this fault simulator was built (revision "
                f"{self._revision} -> {self.circuit.revision}); "
                "create a new simulator"
            )

    def _np_state(
        self, good_values: Mapping[str, int], n_patterns: int
    ) -> "npsim.PackedState":
        """Packed-array form of ``good_values`` (identity-cached)."""
        if (
            isinstance(good_values, npsim.PackedState)
            and good_values.plan is self._np_plan
        ):
            return good_values
        cached = self._np_state_cache
        if (
            cached is not None
            and cached[0] is good_values
            and cached[1] == n_patterns
        ):
            return cached[2]
        state = self._np_plan.state_from_values(good_values, n_patterns)
        self._np_state_cache = (good_values, n_patterns, state)
        return state

    def _np_propagate(
        self,
        fault: Fault,
        good_values: Mapping[str, int],
        n_patterns: int,
        mask: int,
        output_diffs: Optional[Dict[str, int]],
    ) -> int:
        """Word-parallel propagation through the numpy cone plan."""
        state = self._np_state(good_values, n_patterns)
        plan = self._np_plan

        if fault.branch is None:
            start = fault.node
            injected = state.stuck_row(fault.value)
            if npsim.words_equal(state.node_row(start), injected):
                return 0  # fault never excited anywhere
        else:
            start, pin = fault.branch
            injected = state.inject_branch(
                start, pin, state.stuck_row(fault.value)
            )
            self.gate_evals += 1
            if npsim.words_equal(injected, state.node_row(start)):
                return 0

        cone = plan.cone(start, self._cone_order)
        self.gate_evals += cone.n_gates
        detect, diffs = npsim.propagate_cone(
            state, cone, injected, output_diffs is not None
        )
        if output_diffs is not None:
            for po, diff in diffs:
                output_diffs[po] = diff
        guard = self._active_guard(self._guard)
        if guard is not None and guard.should_check():
            self._shadow_check(
                guard, fault, start, ndarray_to_word(injected), state,
                n_patterns, mask, detect,
                None if output_diffs is None else dict(output_diffs),
            )
        return detect

    def _np_batch_ok(self, n_faults: int, n_patterns: int) -> bool:
        """Whether the fault-parallel batched pass beats per-cone walks.

        The batched sweep re-evaluates the whole circuit per fault, so
        it pays off only when enough fault machines share each ufunc
        call (see :class:`BatchPolicy`); wide pattern runs stay eligible
        because the sweep tiles the pattern axis per chunk.
        """
        policy = self.batch_policy
        if self._np_plan is None or n_faults < policy.min_faults:
            return False
        if (
            policy.max_words is not None
            and word_count(n_patterns) > policy.max_words
        ):
            return False
        return (
            npsim.batch_capacity(
                self._np_plan, n_patterns, chunk_bytes=policy.chunk_bytes
            )
            >= policy.min_capacity
        )

    def _np_batch_words(
        self,
        faults: Sequence[Fault],
        good_values: Mapping[str, int],
        n_patterns: int,
    ) -> List[int]:
        """Detection words of ``faults`` via one batched circuit sweep.

        Bit-identical to calling :meth:`simulate_fault` per fault (an
        unexcited fault simply produces a zero column), including the
        Guard's sampling sequence: shadow checks draw per fault in input
        order, exactly as the per-fault loop would.
        """
        self._check_revision()
        mask = self._masks.get(n_patterns)
        if mask is None:
            mask = self._masks[n_patterns] = ones_mask(n_patterns)
        state = self._np_state(good_values, n_patterns)
        plan = self._np_plan
        sites = []
        for fault in faults:
            if fault.branch is None:
                sites.append(
                    (plan.row[fault.node], state.stuck_row(fault.value))
                )
            else:
                sink, pin = fault.branch
                forced = state.inject_branch(
                    sink, pin, state.stuck_row(fault.value)
                ).copy()
                self.gate_evals += 1
                sites.append((plan.row[sink], forced))
        detect, evals = npsim.propagate_batch(
            state, sites, chunk_bytes=self.batch_policy.chunk_bytes
        )
        self.gate_evals += evals
        words = npsim.rows_to_words(detect)
        guard = self._active_guard(self._guard)
        if guard is not None:
            for fault, (_row, forced), word in zip(faults, sites, words):
                if not guard.should_check():
                    continue
                start = (
                    fault.node if fault.branch is None else fault.branch[0]
                )
                self._shadow_check(
                    guard, fault, start, ndarray_to_word(forced), state,
                    n_patterns, mask, word, None,
                )
        return words

    def _interp_propagate(
        self,
        start: str,
        injected: int,
        good_values: Mapping[str, int],
        mask: int,
        output_diffs: Optional[Dict[str, int]],
    ) -> int:
        """Interpreted event-driven cone walk (the compiled path's arbiter)."""
        out_set = self._out_set
        faulty: Dict[str, int] = {}
        detect = 0

        faulty[start] = injected
        if start in out_set:
            detect = good_values[start] ^ injected
            if output_diffs is not None:
                output_diffs[start] = detect & mask

        # Walk the precomputed levelized cone order past the injection
        # site; a gate is (re-)evaluated exactly when some fanin's word
        # changed, which is the same trigger an event-driven worklist
        # would use — gate_evals counts are identical, without the heap.
        # ``events`` counts changed-driver → sink-pin edges not yet
        # consumed; when it hits zero no later gate can see a changed
        # fanin, so the walk stops (fault effects died out).
        fanins_of = self._fanins
        gate_types = self._gate_types
        fanout_counts = self._fanout_counts
        events = fanout_counts[start]
        if not events:
            return detect & mask
        for name in self._cone_order(start):
            if not events:
                break
            if name == start:
                continue
            fins = fanins_of[name]
            changed = 0
            for fi in fins:
                if fi in faulty:
                    changed += 1
            if not changed:
                continue
            events -= changed
            fanin_words = [faulty.get(fi, good_values[fi]) for fi in fins]
            new_word = evaluate_gate(gate_types[name], fanin_words, mask)
            self.gate_evals += 1
            if new_word == good_values[name]:
                continue
            faulty[name] = new_word
            events += fanout_counts[name]
            if name in out_set:
                diff = good_values[name] ^ new_word
                detect |= diff
                if output_diffs is not None:
                    output_diffs[name] = diff & mask
        return detect & mask

    def _shadow_check(
        self,
        guard,
        fault: Fault,
        start: str,
        injected: int,
        good_values: Mapping[str, int],
        n_patterns: int,
        mask: int,
        detect: int,
        diffs_actual: Optional[Dict[str, int]],
    ) -> None:
        """Re-run one compiled cone result through the interpreted walk.

        The arbiter's gate evaluations are rolled back from ``gate_evals``
        so throughput counters keep measuring real (fast-path) work.
        """
        saved_evals = self.gate_evals
        arbiter_diffs: Optional[Dict[str, int]] = (
            None
            if diffs_actual is None
            else {po: 0 for po in self.circuit.outputs}
        )
        try:
            expected_detect = self._interp_propagate(
                start, injected, good_values, mask, arbiter_diffs
            )
        finally:
            self.gate_evals = saved_evals
        variant = "detect" if diffs_actual is None else "diffs"
        if variant == "detect":
            expected, actual = expected_detect, detect
        else:
            expected = {"detect": expected_detect, "diffs": arbiter_diffs}
            actual = {"detect": detect, "diffs": diffs_actual}
        if expected == actual:
            guard.checks += 1
            obs.count("guard.checks")
            return
        from ..verify.bundle import fault_to_payload

        key = ("cone:" if variant == "detect" else "coneD:") + start
        sources = {}
        if self._compiled is not None:
            source = self._compiled.sources.get(key)
            if source is not None:
                sources[key] = source
        guard.checks += 1
        guard.diverge(
            "fault_sim.cone",
            expected=expected,
            actual=actual,
            circuit=self.circuit,
            context={
                "fault": fault_to_payload(fault),
                "n_patterns": n_patterns,
                "good_values": dict(good_values),
                "variant": variant,
                "start": start,
                "kernel": self.kernel,
            },
            sources=sources,
            message=(
                f"{self.kernel} cone propagation for {start!r} disagrees "
                f"with the interpreted walk on fault {fault}"
            ),
        )

    # ------------------------------------------------------------------
    def _resolve_faults(
        self, faults: Optional[Sequence[Fault]], collapse: bool
    ) -> Sequence[Fault]:
        """Default / validate the fault list shared by both run modes."""
        if faults is None:
            if collapse:
                return collapse_faults(self.circuit).representatives
            from .faults import all_stuck_at_faults

            return all_stuck_at_faults(self.circuit)
        foreign = [f for f in faults if f.node not in self.circuit]
        if foreign:
            raise SimulationError(
                f"fault list names nodes absent from circuit "
                f"{self.circuit.name!r}: "
                f"{sorted({f.node for f in foreign})[:5]}"
            )
        return faults

    def run(
        self,
        stimulus: Mapping[str, int],
        n_patterns: int,
        faults: Optional[Sequence[Fault]] = None,
        collapse: bool = True,
        budget: Optional[Budget] = None,
        good_values: Optional[Mapping[str, int]] = None,
    ) -> FaultSimResult:
        """Fault-simulate a stimulus set (exact: no fault dropping).

        Parameters
        ----------
        stimulus:
            Map primary input → packed pattern word.
        n_patterns:
            Number of pattern bits in the stimulus.
        faults:
            Fault list; defaults to the full stuck-at list of the circuit.
        collapse:
            When True (default) and ``faults`` is None, the list is
            equivalence-collapsed first.
        budget:
            Optional cooperative budget; ``patterns`` is charged
            ``n_patterns`` per fault propagated (one word-parallel pass),
            so the limit bounds total pattern-fault simulations.
        good_values:
            Precomputed fault-free node words for this exact stimulus
            (from :class:`~repro.sim.logic_sim.LogicSimulator`).  Lets
            parallel workers replay shared good-circuit words instead of
            each re-simulating the good machine.
        """
        if n_patterns <= 0:
            raise SimulationError("n_patterns must be positive")
        faults = self._resolve_faults(faults, collapse)
        with obs.span(
            "fault_sim.run",
            circuit=self.circuit.name,
            n_patterns=n_patterns,
            n_faults=len(faults),
        ) as sp:
            start = perf_counter()
            evals_before = self.gate_evals
            if good_values is None:
                good_values = self._logic.run(stimulus, n_patterns)
            result = FaultSimResult(n_patterns=n_patterns)
            detected = 0
            heartbeat = obs.Heartbeat("fault_sim.run")
            if self._np_batch_ok(len(faults), n_patterns):
                if budget is not None:
                    for _ in faults:
                        budget.charge(
                            "patterns", n_patterns, "fault_sim.fault"
                        )
                heartbeat.beat(faults_done=0, faults_total=len(faults))
                words = self._np_batch_words(faults, good_values, n_patterns)
                for fault, word in zip(faults, words):
                    result.detection_word[fault] = word
                    result.first_detect[fault] = _first_set_bit(word)
                    if word:
                        detected += 1
                heartbeat.beat(
                    faults_done=len(faults), faults_total=len(faults)
                )
            else:
                for i, fault in enumerate(faults):
                    if budget is not None:
                        budget.charge(
                            "patterns", n_patterns, "fault_sim.fault"
                        )
                    heartbeat.beat(
                        faults_done=i, faults_total=len(faults)
                    )
                    word = self.simulate_fault(fault, good_values, n_patterns)
                    result.detection_word[fault] = word
                    result.first_detect[fault] = _first_set_bit(word)
                    if word:
                        detected += 1
            result._n_detected = detected
            seconds = perf_counter() - start
            evals = self.gate_evals - evals_before
            sp.set(detected=detected, gate_evals=evals, seconds=seconds)
        obs.count("fault_sim.runs")
        obs.count("fault_sim.patterns", n_patterns)
        obs.count("fault_sim.faults", len(faults))
        # "Dropped" in the fault-dropping sense: a detected fault would be
        # removed from any subsequent pass over the same list.
        obs.count("fault_sim.dropped", detected)
        obs.count("fault_sim.undetected", len(faults) - detected)
        obs.count("fault_sim.gate_evals", evals)
        if seconds > 0.0:
            obs.gauge("fault_sim.gate_evals_per_sec", evals / seconds)
        obs.observe("fault_sim.run_seconds", seconds)
        return result

    def coverage_blocks(
        self,
        stimulus: Mapping[str, int],
        n_patterns: int,
        block: int = 64,
    ):
        """Yield ``(block_size, good_values)`` pairs for dropping blocks.

        Blocks follow :meth:`run_coverage`'s geometric schedule (doubling
        from ``block``).  Only the stimulus is split per block (inputs are
        few, and the high-end-first split is O(total bits)); the good
        machine is then logic-simulated at block width, so the combined
        good-simulation bit-work across all blocks equals one full-width
        pass — no upfront full-width run, and no per-block slicing of
        every internal node's word.  Lazy, so a consumer that drops its
        whole fault list early never pays for the late, wide blocks.
        """
        if block <= 0:
            raise SimulationError("block must be positive")
        sizes: List[int] = []
        covered = 0
        blk = block
        while covered < n_patterns:
            size = min(blk, n_patterns - covered)
            sizes.append(size)
            covered += size
            blk *= 2
        # Split lazily, block by block: a consumer that drops its whole
        # fault list early never pays for slicing the unconsumed tail of
        # the budget (the doubling schedule keeps the total shift work
        # linear in the bits actually consumed).
        remaining = {
            name: stimulus.get(name, 0) for name in self.circuit.inputs
        }
        for blk_n in sizes:
            lo_mask = (1 << blk_n) - 1
            stim_block = {
                name: word & lo_mask for name, word in remaining.items()
            }
            remaining = {
                name: word >> blk_n for name, word in remaining.items()
            }
            yield blk_n, self._logic.run(stim_block, blk_n)

    def run_coverage(
        self,
        stimulus: Mapping[str, int],
        n_patterns: int,
        faults: Optional[Sequence[Fault]] = None,
        collapse: bool = True,
        budget: Optional[Budget] = None,
        block: int = 64,
        good_blocks: Optional[Sequence[Tuple[int, Mapping[str, int]]]] = None,
    ) -> FaultSimResult:
        """Coverage-oriented fault simulation with fault dropping.

        Patterns are applied in blocks; a fault detected in one block is
        **dropped** — never simulated against later blocks.  Coverage and
        first-detect indices are identical to :meth:`run` on the same
        stimulus (each block applies exactly the stimulus bits the exact
        run would), but the work saved scales with how early faults are
        detected — on a well-tested circuit most faults cost one small
        block instead of the whole budget.

        Blocks grow geometrically (doubling from ``block``), which keeps
        the easy-fault prefix small while bounding the overhead on faults
        that never drop: an undetected fault sees only O(log n) block
        passes whose combined word width equals the full budget, instead
        of ``n/block`` fixed-size passes.

        The result has ``coverage_only=True``: detection words only carry
        the first detecting block's bits, so per-pattern detection
        probabilities are unavailable.

        Parameters
        ----------
        stimulus, n_patterns, faults, collapse:
            As for :meth:`run`.
        budget:
            Optional cooperative budget; ``patterns`` is charged per fault
            per block actually simulated, so dropping directly reduces the
            charge.
        block:
            Patterns in the first dropping block (default 64, a machine
            word); later blocks double.
        good_blocks:
            Precomputed ``(block_size, good_values)`` pairs from
            :meth:`coverage_blocks` for this exact stimulus and ``block``
            schedule.  Lets parallel workers share one good-machine
            simulation instead of each redoing the per-block logic sims.
        """
        if n_patterns <= 0:
            raise SimulationError("n_patterns must be positive")
        if block <= 0:
            raise SimulationError("block must be positive")
        faults = self._resolve_faults(faults, collapse)
        with obs.span(
            "fault_sim.run_coverage",
            circuit=self.circuit.name,
            n_patterns=n_patterns,
            n_faults=len(faults),
            block=block,
        ) as sp:
            start = perf_counter()
            evals_before = self.gate_evals
            result = FaultSimResult(n_patterns=n_patterns, coverage_only=True)
            remaining = list(faults)
            sims = 0
            if good_blocks is None:
                good_blocks = self.coverage_blocks(stimulus, n_patterns, block)
            offset = 0
            heartbeat = obs.Heartbeat("fault_sim.run_coverage")
            block_iter = iter(good_blocks)
            while remaining:
                # Checked before drawing the next block: once every fault
                # has dropped, the good machine for the (wide) tail of the
                # schedule is never simulated.
                nxt = next(block_iter, None)
                if nxt is None:
                    break
                blk_n, good_block = nxt
                survivors: List[Fault] = []
                if self._np_batch_ok(len(remaining), blk_n):
                    if budget is not None:
                        for _ in remaining:
                            budget.charge(
                                "patterns", blk_n, "fault_sim.block"
                            )
                    sims += len(remaining)
                    heartbeat.beat(
                        block_patterns=blk_n,
                        pattern_offset=offset,
                        faults_remaining=len(remaining),
                        fault_block_sims=sims,
                    )
                    words = self._np_batch_words(remaining, good_block, blk_n)
                    for fault, word in zip(remaining, words):
                        if word:
                            result.detection_word[fault] = word << offset
                            result.first_detect[fault] = (
                                offset + _first_set_bit(word)
                            )
                        else:
                            survivors.append(fault)
                else:
                    for fault in remaining:
                        if budget is not None:
                            budget.charge(
                                "patterns", blk_n, "fault_sim.block"
                            )
                        sims += 1
                        heartbeat.beat(
                            block_patterns=blk_n,
                            pattern_offset=offset,
                            faults_remaining=len(remaining),
                            fault_block_sims=sims,
                        )
                        word = self.simulate_fault(fault, good_block, blk_n)
                        if word:
                            result.detection_word[fault] = word << offset
                            result.first_detect[fault] = (
                                offset + _first_set_bit(word)
                            )
                        else:
                            survivors.append(fault)
                remaining = survivors
                offset += blk_n
            for fault in remaining:
                result.detection_word[fault] = 0
                result.first_detect[fault] = None
            # Restore the input fault-list order for downstream iteration.
            result.detection_word = {
                f: result.detection_word[f] for f in faults
            }
            result.first_detect = {f: result.first_detect[f] for f in faults}
            detected = len(faults) - len(remaining)
            result._n_detected = detected
            seconds = perf_counter() - start
            evals = self.gate_evals - evals_before
            sp.set(
                detected=detected,
                gate_evals=evals,
                seconds=seconds,
                fault_block_sims=sims,
            )
        obs.count("fault_sim.runs")
        obs.count("fault_sim.patterns", n_patterns)
        obs.count("fault_sim.faults", len(faults))
        obs.count("fault_sim.dropped", detected)
        obs.count("fault_sim.undetected", len(faults) - detected)
        obs.count("fault_sim.gate_evals", evals)
        if seconds > 0.0:
            obs.gauge("fault_sim.gate_evals_per_sec", evals / seconds)
        obs.observe("fault_sim.run_seconds", seconds)
        return result


def _first_set_bit(word: int) -> Optional[int]:
    """Index of the least significant set bit, or None when word == 0."""
    if word == 0:
        return None
    return (word & -word).bit_length() - 1


def fault_coverage(
    circuit: Circuit,
    stimulus: Mapping[str, int],
    n_patterns: int,
    faults: Optional[Sequence[Fault]] = None,
) -> float:
    """One-shot collapsed stuck-at coverage of a stimulus set.

    Uses the fault-dropping coverage path; the number is identical to an
    exact run's ``coverage()``.
    """
    return (
        FaultSimulator(circuit)
        .run_coverage(stimulus, n_patterns, faults=faults)
        .coverage()
    )
