"""Pattern-parallel stuck-at fault simulation with cone-restricted events.

For each fault the simulator re-evaluates only the fault's fanout cone (in
levelized order) against cached good-circuit values, with all patterns packed
into single integer words — i.e. single-fault propagation, all patterns in
parallel, the PPSFP-style organization classic fault simulators use.

Key outputs:

* per-fault **detection word** (bit ``p`` set iff pattern ``p`` detects);
* per-fault **first detecting pattern**, from which cumulative coverage
  curves (the figures of the evaluation) are derived;
* plain coverage numbers over a collapsed fault list.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import obs
from ..circuit.gates import evaluate_gate
from ..circuit.netlist import Circuit
from ..errors import SimulationError
from ..resilience import Budget
from .bitops import ones_mask
from .faults import CollapsedFaultSet, Fault, collapse_faults
from .logic_sim import LogicSimulator

__all__ = ["FaultSimResult", "FaultSimulator", "fault_coverage"]


@dataclass
class FaultSimResult:
    """Outcome of one fault-simulation run.

    Attributes
    ----------
    n_patterns:
        Number of patterns applied.
    detection_word:
        Map fault → packed word; bit ``p`` is 1 iff pattern ``p`` detects
        the fault at some primary output.
    first_detect:
        Map fault → index of the first detecting pattern (``None`` if the
        fault escapes all patterns).
    """

    n_patterns: int
    detection_word: Dict[Fault, int] = field(default_factory=dict)
    first_detect: Dict[Fault, Optional[int]] = field(default_factory=dict)

    @property
    def faults(self) -> List[Fault]:
        """The simulated fault list."""
        return list(self.detection_word)

    def detected_faults(self) -> List[Fault]:
        """Faults detected by at least one pattern."""
        return [f for f, w in self.detection_word.items() if w]

    def undetected_faults(self) -> List[Fault]:
        """Faults that escaped every pattern."""
        return [f for f, w in self.detection_word.items() if not w]

    def coverage(self) -> float:
        """Fraction of faults detected (1.0 when the fault list is empty)."""
        if not self.detection_word:
            return 1.0
        return len(self.detected_faults()) / len(self.detection_word)

    def coverage_at(self, n: int) -> float:
        """Coverage after only the first ``n`` patterns."""
        if not self.detection_word:
            return 1.0
        hit = sum(
            1
            for fd in self.first_detect.values()
            if fd is not None and fd < n
        )
        return hit / len(self.detection_word)

    def coverage_curve(
        self, checkpoints: Optional[Sequence[int]] = None
    ) -> List[Tuple[int, float]]:
        """Cumulative ``(pattern_count, coverage)`` series.

        Defaults to powers of two up to ``n_patterns`` (plus the endpoint),
        matching the log-x coverage plots of the BIST literature.
        """
        if checkpoints is None:
            checkpoints = []
            n = 1
            while n < self.n_patterns:
                checkpoints.append(n)
                n *= 2
            checkpoints.append(self.n_patterns)
        return [(n, self.coverage_at(n)) for n in checkpoints]

    def detection_probability(self, fault: Fault) -> float:
        """Empirical per-pattern detection probability of ``fault``."""
        return self.detection_word[fault].bit_count() / self.n_patterns


class FaultSimulator:
    """Stuck-at fault simulator bound to one circuit.

    The good-circuit values are computed once per stimulus; each fault then
    re-evaluates only its fanout cone.
    """

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        self._logic = LogicSimulator(circuit)
        self._level = circuit.levels()
        # Cache each node's cone evaluation order.
        self._cone_order_cache: Dict[str, List[str]] = {}
        #: Faulty-machine gate evaluations performed over this
        #: simulator's lifetime (each one is word-parallel over the
        #: pattern budget) — the unit of fault-sim throughput.
        self.gate_evals = 0

    # ------------------------------------------------------------------
    def _cone_order(self, start: str) -> List[str]:
        """Gates in the fanout cone of ``start``, levelized (incl. start)."""
        cached = self._cone_order_cache.get(start)
        if cached is not None:
            return cached
        cone = self.circuit.fanout_cone(start)
        order = sorted(cone, key=lambda n: (self._level[n], n))
        self._cone_order_cache[start] = order
        return order

    def simulate_fault_responses(
        self,
        fault: Fault,
        good_values: Mapping[str, int],
        n_patterns: int,
    ) -> Dict[str, int]:
        """Per-output difference words of one fault.

        Returns a map primary output → packed word whose bit ``p`` is set
        iff the fault flips that output under pattern ``p`` (the faulty
        response is ``good ^ diff``).  Needed by response compaction, where
        *which* outputs flip decides whether a signature aliases.
        """
        diffs: Dict[str, int] = {po: 0 for po in self.circuit.outputs}
        self._propagate(fault, good_values, n_patterns, diffs)
        return diffs

    def simulate_fault(
        self,
        fault: Fault,
        good_values: Mapping[str, int],
        n_patterns: int,
    ) -> int:
        """Return the packed detection word of one fault.

        ``good_values`` must come from a prior fault-free :meth:`run` of the
        same stimulus (any node → word mapping covering the whole circuit).
        """
        return self._propagate(fault, good_values, n_patterns, None)

    def _propagate(
        self,
        fault: Fault,
        good_values: Mapping[str, int],
        n_patterns: int,
        output_diffs: Optional[Dict[str, int]],
    ) -> int:
        """Shared propagation kernel.

        Returns the combined detection word; when ``output_diffs`` is a
        dict it is additionally filled with per-output difference words.
        """
        mask = ones_mask(n_patterns)
        stuck_word = mask if fault.value else 0
        faulty: Dict[str, int] = {}
        out_set = set(self.circuit.outputs)
        detect = 0

        def note(name: str, diff: int) -> None:
            nonlocal detect
            detect |= diff
            if output_diffs is not None:
                output_diffs[name] = diff & mask

        if fault.branch is None:
            start = fault.node
            if good_values[start] == stuck_word:
                return 0  # fault never excited anywhere
            faulty[start] = stuck_word
            if start in out_set:
                note(start, good_values[start] ^ stuck_word)
            frontier = [sink for sink, _pin in self.circuit.fanouts(start)]
        else:
            sink, pin = fault.branch
            node = self.circuit.node(sink)
            fanin_words = [
                stuck_word if p == pin else good_values[fi]
                for p, fi in enumerate(node.fanins)
            ]
            new_word = evaluate_gate(node.gate_type, fanin_words, mask)
            self.gate_evals += 1
            if new_word == good_values[sink]:
                return 0
            faulty[sink] = new_word
            if sink in out_set:
                note(sink, good_values[sink] ^ new_word)
            frontier = [s for s, _p in self.circuit.fanouts(sink)]

        if not frontier:
            return detect & mask

        # Event-driven levelized propagation over the affected cone: a
        # level-ordered worklist evaluates affected gates and schedules the
        # fanouts of any gate whose word actually changed.
        pending = set(frontier)
        heap: List[Tuple[int, str]] = [(self._level[n], n) for n in pending]
        heapq.heapify(heap)
        scheduled = set(pending)
        while heap:
            _lvl, name = heapq.heappop(heap)
            scheduled.discard(name)
            node = self.circuit.node(name)
            fanin_words = [faulty.get(fi, good_values[fi]) for fi in node.fanins]
            new_word = evaluate_gate(node.gate_type, fanin_words, mask)
            self.gate_evals += 1
            old_word = faulty.get(name, good_values[name])
            if new_word == old_word:
                continue
            faulty[name] = new_word
            if name in out_set:
                note(name, good_values[name] ^ new_word)
            for s, _p in self.circuit.fanouts(name):
                if s not in scheduled:
                    scheduled.add(s)
                    heapq.heappush(heap, (self._level[s], s))
        return detect & mask

    # ------------------------------------------------------------------
    def run(
        self,
        stimulus: Mapping[str, int],
        n_patterns: int,
        faults: Optional[Sequence[Fault]] = None,
        collapse: bool = True,
        budget: Optional[Budget] = None,
    ) -> FaultSimResult:
        """Fault-simulate a stimulus set.

        Parameters
        ----------
        stimulus:
            Map primary input → packed pattern word.
        n_patterns:
            Number of pattern bits in the stimulus.
        faults:
            Fault list; defaults to the full stuck-at list of the circuit.
        collapse:
            When True (default) and ``faults`` is None, the list is
            equivalence-collapsed first.
        budget:
            Optional cooperative budget; ``patterns`` is charged
            ``n_patterns`` per fault propagated (one word-parallel pass),
            so the limit bounds total pattern-fault simulations.
        """
        if n_patterns <= 0:
            raise SimulationError("n_patterns must be positive")
        if faults is None:
            if collapse:
                faults = collapse_faults(self.circuit).representatives
            else:
                from .faults import all_stuck_at_faults

                faults = all_stuck_at_faults(self.circuit)
        else:
            foreign = [f for f in faults if f.node not in self.circuit]
            if foreign:
                raise SimulationError(
                    f"fault list names nodes absent from circuit "
                    f"{self.circuit.name!r}: "
                    f"{sorted({f.node for f in foreign})[:5]}"
                )
        with obs.span(
            "fault_sim.run",
            circuit=self.circuit.name,
            n_patterns=n_patterns,
            n_faults=len(faults),
        ) as sp:
            start = perf_counter()
            evals_before = self.gate_evals
            good_values = self._logic.run(stimulus, n_patterns)
            result = FaultSimResult(n_patterns=n_patterns)
            detected = 0
            for fault in faults:
                if budget is not None:
                    budget.charge("patterns", n_patterns, "fault_sim.fault")
                word = self.simulate_fault(fault, good_values, n_patterns)
                result.detection_word[fault] = word
                result.first_detect[fault] = _first_set_bit(word)
                if word:
                    detected += 1
            seconds = perf_counter() - start
            evals = self.gate_evals - evals_before
            sp.set(detected=detected, gate_evals=evals, seconds=seconds)
        obs.count("fault_sim.runs")
        obs.count("fault_sim.patterns", n_patterns)
        obs.count("fault_sim.faults", len(faults))
        # "Dropped" in the fault-dropping sense: a detected fault would be
        # removed from any subsequent pass over the same list.
        obs.count("fault_sim.dropped", detected)
        obs.count("fault_sim.undetected", len(faults) - detected)
        obs.count("fault_sim.gate_evals", evals)
        if seconds > 0.0:
            obs.gauge("fault_sim.gate_evals_per_sec", evals / seconds)
        obs.observe("fault_sim.run_seconds", seconds)
        return result


def _first_set_bit(word: int) -> Optional[int]:
    """Index of the least significant set bit, or None when word == 0."""
    if word == 0:
        return None
    return (word & -word).bit_length() - 1


def fault_coverage(
    circuit: Circuit,
    stimulus: Mapping[str, int],
    n_patterns: int,
    faults: Optional[Sequence[Fault]] = None,
) -> float:
    """One-shot collapsed stuck-at coverage of a stimulus set."""
    return FaultSimulator(circuit).run(stimulus, n_patterns, faults=faults).coverage()
