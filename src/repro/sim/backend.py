"""Explicit simulation-backend protocol (``interp`` / ``compiled`` / ``numpy``).

Every consumer of a kernel mode — :class:`~repro.sim.logic_sim.LogicSimulator`,
the COP passes, :func:`~repro.core.virtual.evaluate_placement`, parallel
worker priming — used to test ``kernel == "compiled"`` inline.  This module
makes the dispatch explicit: a :class:`SimulationBackend` answers for each
pass either with a *runner* (a callable with the exact calling convention
of the corresponding compiled kernel) or ``None``, which means "no fast
path here — fall back to the interpreted walk".  The interpreted walk is
therefore both the ``interp`` backend (all runners ``None``) and the
universal fallback, which keeps it the single ground-truth arbiter the
Guard machinery shadows against.

Runner contracts (identical to the compiled kernels they generalize):

* ``logic_runner(circuit) -> fn(stimulus, n_patterns) -> Mapping[str, int]``
  (force-free fault-free simulation; the numpy backend returns a
  :class:`~repro.sim.npsim.PackedState`, a mapping whose array form the
  fault simulator consumes directly);
* ``cop_forward_runner(circuit) -> fn(pget) -> Dict[str, float]``;
* ``cop_backward_runner(circuit, stem_combine) -> fn(prob) ->
  (node_obs, branch_obs)``;
* ``placement_runner(circuit) -> fn(pin_get, sctl, bctl, sobs, bobs,
  cpt, cof) -> 7 dicts`` (see :mod:`repro.sim.compile`).

Fault-site cone propagation stays inside
:class:`~repro.sim.fault_sim.FaultSimulator` (it is entangled with guard
sampling, fault dropping and gate-eval accounting), dispatched on the
same resolved kernel name.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..circuit.netlist import Circuit
from .bitops import ones_mask
from .compile import (
    generate_cop_backward_source,
    generate_cop_forward_source,
    generate_logic_source,
    generate_placement_source,
    get_compiled,
    resolve_kernel,
    seed_registry,
)
from . import npsim

__all__ = [
    "SimulationBackend",
    "InterpBackend",
    "CompiledBackend",
    "NumpyBackend",
    "get_backend",
]


class SimulationBackend:
    """One simulation strategy; runners default to ``None`` (interpret)."""

    #: The resolved kernel name this backend serves.
    name: str = "interp"

    def available(self) -> bool:
        """Whether this backend can run in the current process."""
        return True

    # -- per-pass fast paths (None -> interpreted fallback) -------------
    def logic_runner(self, circuit: Circuit):
        return None

    def cop_forward_runner(self, circuit: Circuit):
        return None

    def cop_backward_runner(self, circuit: Circuit, stem_combine: str):
        return None

    def placement_runner(self, circuit: Circuit):
        return None

    def placement_delta_engine(self, circuit: Circuit):
        """A fresh vectorized dirty-cone delta engine for incremental
        placement evaluation, or ``None`` (interpreted heap walk).

        Unlike the runners above this constructs a *new* engine per call:
        the engine carries per-base state
        (:meth:`~repro.sim.npsim.PlacementDelta.rebase`), so each
        :class:`~repro.core.incremental.IncrementalEvaluator` owns one.
        """
        return None

    # -- parallel worker priming ----------------------------------------
    def worker_payload(
        self, circuit: Circuit
    ) -> Tuple[Optional[Dict[str, str]], Optional[Dict[str, int]]]:
        """(sources, cone_meta) to ship to worker processes, if any.

        Compiled code objects don't pickle, so the compiled backend ships
        its generated *source strings*; backends whose state is cheap to
        rebuild (numpy plans are index arrays) ship nothing.
        """
        return None, None

    def prime_worker(
        self,
        circuit: Circuit,
        sources: Optional[Dict[str, str]] = None,
        cone_meta: Optional[Dict[str, int]] = None,
    ) -> None:
        """Absorb a :meth:`worker_payload` inside a worker process."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class InterpBackend(SimulationBackend):
    """The interpreted gate walk — ground truth, no fast paths."""

    name = "interp"


class CompiledBackend(SimulationBackend):
    """Per-circuit generated-Python kernels (:mod:`repro.sim.compile`)."""

    name = "compiled"

    def logic_runner(self, circuit: Circuit):
        fn = get_compiled(circuit).function(
            "logic", lambda: generate_logic_source(circuit)
        )

        def run(stimulus, n_patterns):
            return fn(stimulus, ones_mask(n_patterns))

        return run

    def cop_forward_runner(self, circuit: Circuit):
        return get_compiled(circuit).function(
            "cop_fwd", lambda: generate_cop_forward_source(circuit)
        )

    def cop_backward_runner(self, circuit: Circuit, stem_combine: str):
        return get_compiled(circuit).function(
            f"cop_bwd:{stem_combine}",
            lambda: generate_cop_backward_source(circuit, stem_combine),
        )

    def placement_runner(self, circuit: Circuit):
        return get_compiled(circuit).function(
            "place", lambda: generate_placement_source(circuit)
        )

    def worker_payload(self, circuit: Circuit):
        entry = get_compiled(circuit)
        return dict(entry.sources), dict(entry.cone_meta)

    def prime_worker(self, circuit, sources=None, cone_meta=None):
        if sources:
            seed_registry(circuit, sources, cone_meta)


class NumpyBackend(SimulationBackend):
    """Word-parallel uint64/float64 array engine (:mod:`repro.sim.npsim`)."""

    name = "numpy"

    def available(self) -> bool:
        return npsim.HAVE_NUMPY

    def logic_runner(self, circuit: Circuit):
        plan = npsim.get_plan(circuit)
        return plan.run_state

    def cop_forward_runner(self, circuit: Circuit):
        return npsim.get_plan(circuit).cop_forward

    def cop_backward_runner(self, circuit: Circuit, stem_combine: str):
        plan = npsim.get_plan(circuit)

        def run(probability):
            return plan.cop_backward(probability, stem_combine)

        return run

    def placement_runner(self, circuit: Circuit):
        return npsim.get_plan(circuit).placement

    def placement_delta_engine(self, circuit: Circuit):
        # Narrow-level circuits pay the engine's fixed per-level cost
        # without amortizing it over wide slices — hand those back to the
        # interpreted walk (see npsim.DELTA_MIN_MEAN_WIDTH; the
        # REPRO_NP_DELTA_MIN_WIDTH env var overrides the cutoff).
        plan = npsim.get_plan(circuit)
        if not npsim.delta_profitable(plan):
            return None
        return npsim.PlacementDelta(plan)

    def prime_worker(self, circuit, sources=None, cone_meta=None):
        # Plans are cheap index arrays — rebuild locally instead of
        # shipping ndarrays through pickle.
        npsim.get_plan(circuit)


_BACKENDS: Dict[str, SimulationBackend] = {
    "interp": InterpBackend(),
    "compiled": CompiledBackend(),
    "numpy": NumpyBackend(),
}


def get_backend(kernel: Optional[str] = None) -> SimulationBackend:
    """The backend singleton for a kernel name (default applies)."""
    return _BACKENDS[resolve_kernel(kernel)]
