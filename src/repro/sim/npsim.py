"""Word-parallel numpy simulation engine (the ``numpy`` backend).

The interpreted simulator packs all patterns of one signal into a Python
bignum; the compiled kernels remove the per-gate dispatch but still run
bignum arithmetic, whose limbs are 30-bit CPython digits.  This module
packs each signal into a little-endian ``(n_words,)`` ``uint64`` ndarray
instead (see :func:`repro.sim.bitops.word_to_ndarray` for the layout) and
evaluates each *group* of same-shaped gates as a handful of vectorized
ufunc calls — 64-bit limbs, SIMD inner loops, no per-gate allocation.

Plans, not codegen
------------------
Where :mod:`repro.sim.compile` generates Python source per circuit, this
backend builds a :class:`CircuitPlan`: index arrays that group the gates
of each logic level by ``(gate_type, fan-in arity)`` so one group becomes
one gather / fold / scatter sequence.  Node rows are assigned group-major,
so every group's outputs are a contiguous slice of the value matrix.
Plans live in a process-wide LRU registry keyed by
:meth:`~repro.circuit.netlist.Circuit.structural_hash`, exactly like the
compiled-kernel registry, and are cheap enough to rebuild in parallel
workers (no pickled payload needed).

Four passes share the plan:

* **logic** — fault-free simulation of all gates (uint64 bitwise folds);
* **cone** — per-fault-site straight-line propagation over the existing
  cone orders (:class:`ConePlan`, mirroring the compiled cone kernels);
* **cop forward / backward** — the COP probability passes as float64
  array sweeps, including the ``stem_combine`` escape folds;
* **placement** — the placement-aware forward+backward pass of
  :func:`repro.core.virtual.evaluate_placement`, with the (few) control/
  observe-site fixups applied as scalar patches between level sweeps.

Bit-identity
------------
Every float fold replays the interpreter's operation order exactly (same
rules as the compiled emitters — see the emitter comments in
:mod:`repro.sim.compile`); the uint64 folds are masked identically to
:func:`repro.circuit.gates.evaluate_gate`.  numpy's float64 ufuncs apply
IEEE-754 arithmetic per element, so elementwise op-order equality implies
bit-identical results, and the property/fuzz suites pin this backend to
the interpreted ground truth the same way they pin the compiled kernels.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .. import obs
from ..circuit.gates import GateType
from ..circuit.netlist import Circuit
from ..errors import SimulationError
from .bitops import ndarray_to_word, ones_mask, word_count, word_to_ndarray

try:  # pragma: no cover - import guard exercised only on stripped installs
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None
    HAVE_NUMPY = False

__all__ = [
    "HAVE_NUMPY",
    "BATCH_CHUNK_BYTES",
    "BATCH_TILE_MIN_SITES",
    "DELTA_MIN_MEAN_WIDTH",
    "CircuitPlan",
    "ConePlan",
    "PackedState",
    "PlacementDelta",
    "batch_capacity",
    "batch_staging_rows",
    "batch_tile_words",
    "delta_profitable",
    "get_plan",
    "clear_plans",
    "plan_registry_size",
    "mask_array",
    "propagate_batch",
    "propagate_cone",
    "rows_to_words",
    "words_equal",
]


def words_equal(a, b) -> bool:
    """Exact equality of two packed uint64 rows."""
    return bool(np.array_equal(a, b))

_AND_TYPES = (GateType.AND, GateType.NAND)
_OR_TYPES = (GateType.OR, GateType.NOR)
_XOR_TYPES = (GateType.XOR, GateType.XNOR)
_INVERT_TYPES = (GateType.NAND, GateType.NOR, GateType.XNOR)

_ALL_ONES = 0xFFFFFFFFFFFFFFFF


def _require_numpy() -> None:
    if not HAVE_NUMPY:  # pragma: no cover - stripped installs only
        raise SimulationError(
            "kernel 'numpy' requires numpy, which is not installed"
        )


# ---------------------------------------------------------------------------
# Pattern masks
# ---------------------------------------------------------------------------

#: n_patterns -> read-only uint64 mask array (full words + partial last).
_MASKS: Dict[int, "np.ndarray"] = {}
_MASKS_CAP = 256


def mask_array(n_patterns: int):
    """Read-only uint64 mask with the low ``n_patterns`` bits set."""
    arr = _MASKS.get(n_patterns)
    if arr is None:
        _require_numpy()
        n_words = word_count(n_patterns)
        arr = np.full(n_words, _ALL_ONES, dtype=np.uint64)
        rem = n_patterns & 63
        if rem:
            arr[-1] = np.uint64((1 << rem) - 1)
        arr.setflags(write=False)
        if len(_MASKS) >= _MASKS_CAP:
            _MASKS.clear()
        _MASKS[n_patterns] = arr
    return arr


# ---------------------------------------------------------------------------
# Word-level group evaluation (uint64)
# ---------------------------------------------------------------------------


def _eval_word_group(gate_type, arity, fanin_rows, V, out, mask) -> None:
    """Evaluate one (gate_type, arity) group of gates into ``out``.

    ``fanin_rows`` is an ``(n_gates, arity)`` index matrix into ``V``;
    ``out`` is the group's contiguous output slice of ``V``.  Folds mirror
    :func:`~repro.circuit.gates.evaluate_gate` (all rows invariantly
    masked, inversions are one xor with the mask array).

    Single-gate groups skip the gather: a chain-shaped circuit (one gate
    per level) otherwise pays an advanced-indexing copy of every fan-in
    row per level, which dominates deep-circuit sweeps.
    """
    if len(fanin_rows) == 1 and gate_type is not GateType.CONST0 \
            and gate_type is not GateType.CONST1:
        _eval_word_rows(
            gate_type, [V[int(r)] for r in fanin_rows[0]], out[0], mask
        )
        return
    if gate_type is GateType.CONST0:
        out[:] = 0
        return
    if gate_type is GateType.CONST1:
        out[:] = mask
        return
    out[:] = V[fanin_rows[:, 0]]
    if gate_type is GateType.BUF:
        return
    if gate_type is GateType.NOT:
        np.bitwise_xor(out, mask, out=out)
        return
    if gate_type in _AND_TYPES:
        op = np.bitwise_and
    elif gate_type in _OR_TYPES:
        op = np.bitwise_or
    else:
        op = np.bitwise_xor
    for k in range(1, arity):
        op(out, V[fanin_rows[:, k]], out=out)
    if gate_type in _INVERT_TYPES:
        np.bitwise_xor(out, mask, out=out)


def _eval_word_rows(gate_type, rows, out, mask) -> None:
    """Evaluate one gate on explicit fan-in row vectors into ``out``."""
    if gate_type is GateType.CONST0:
        out[:] = 0
        return
    if gate_type is GateType.CONST1:
        out[:] = mask
        return
    if gate_type is GateType.BUF:
        out[:] = rows[0]
        return
    if gate_type is GateType.NOT:
        np.bitwise_xor(rows[0], mask, out=out)
        return
    if gate_type in _AND_TYPES:
        op = np.bitwise_and
    elif gate_type in _OR_TYPES:
        op = np.bitwise_or
    else:
        op = np.bitwise_xor
    if len(rows) == 1:
        out[:] = rows[0]
    else:
        op(rows[0], rows[1], out=out)
        for r in rows[2:]:
            op(out, r, out=out)
    if gate_type in _INVERT_TYPES:
        np.bitwise_xor(out, mask, out=out)


# ---------------------------------------------------------------------------
# Probability group evaluation (float64)
# ---------------------------------------------------------------------------
# Fold orders replay output_probability exactly; the only simplification
# is dropping the leading ``1.0 *`` / first-XOR-from-``0.0`` identities,
# the same IEEE-exact rule the compiled emitters use.


def _eval_prob_group(gate_type, arity, cols, out) -> None:
    """``out[g]`` = P[gate g = 1] from the gathered fan-in columns.

    ``cols`` is ``(n_gates, arity)`` float64 (already gathered from node
    probabilities or branch-post values — the caller picks the source).
    """
    if gate_type is GateType.CONST0:
        out[:] = 0.0
        return
    if gate_type is GateType.CONST1:
        out[:] = 1.0
        return
    if gate_type is GateType.BUF:
        out[:] = cols[:, 0]
        return
    if gate_type is GateType.NOT:
        np.subtract(1.0, cols[:, 0], out=out)
        return
    if gate_type in _AND_TYPES:
        out[:] = cols[:, 0]
        for k in range(1, arity):
            np.multiply(out, cols[:, k], out=out)
        if gate_type is GateType.NAND:
            np.subtract(1.0, out, out=out)
        return
    if gate_type in _OR_TYPES:
        np.subtract(1.0, cols[:, 0], out=out)
        for k in range(1, arity):
            out *= 1.0 - cols[:, k]
        if gate_type is GateType.OR:
            np.subtract(1.0, out, out=out)
        return
    # XOR / XNOR: pairwise p ⊕ q = p(1-q) + q(1-p), in fan-in order.
    out[:] = cols[:, 0]
    for k in range(1, arity):
        q = cols[:, k]
        np.add(out * (1.0 - q), q * (1.0 - out), out=out)
    if gate_type is GateType.XNOR:
        np.subtract(1.0, out, out=out)


def _sens_fold(kind: str, side_cols) -> "np.ndarray":
    """Side-input sensitization product per edge (complete before use).

    ``side_cols`` is ``(n_edges, n_side)``; mirrors
    :func:`~repro.circuit.gates.side_input_sensitization_probability`.
    """
    if kind == "one":
        raise AssertionError("'one' edges have no sensitization fold")
    if kind == "and":
        sens = side_cols[:, 0].copy()
        for k in range(1, side_cols.shape[1]):
            np.multiply(sens, side_cols[:, k], out=sens)
        return sens
    sens = 1.0 - side_cols[:, 0]
    for k in range(1, side_cols.shape[1]):
        sens *= 1.0 - side_cols[:, k]
    return sens


# ---------------------------------------------------------------------------
# Packed good-machine state
# ---------------------------------------------------------------------------


class PackedState(Mapping):
    """Good-machine values as a ``(n_rows, n_words)`` uint64 matrix.

    Behaves as the usual node → int-word mapping (so it can stand in for
    ``LogicSimulator.run`` results anywhere), but keeps the array form
    primary: fault propagation reads rows directly, and the int view is
    materialized lazily only when something (the Guard arbiter, a repro
    bundle, a caller iterating items) actually asks for it.
    """

    def __init__(self, plan: "CircuitPlan", values, n_patterns: int) -> None:
        self.plan = plan
        self.values = values
        self.n_patterns = n_patterns
        self.mask = mask_array(n_patterns)
        self._ints: Optional[Dict[str, int]] = None
        self._zeros = None
        self._scratch = None
        self._detect = None
        self._tmp = None
        self._inject = None

    # -- Mapping interface (int-word view) ------------------------------
    def int_map(self) -> Dict[str, int]:
        """The node → packed-int-word dict (built once, cached)."""
        if self._ints is None:
            # One bulk ``tobytes`` of the whole matrix beats a per-row
            # ndarray round trip; the first Guard shadow check of a run
            # pays this build, so it sits on the measured overhead path.
            words = rows_to_words(self.values)
            self._ints = {
                name: words[r] for name, r in self.plan.entry_rows
            }
        return self._ints

    def __getitem__(self, name: str) -> int:
        return self.int_map()[name]

    def __iter__(self):
        return iter(self.int_map())

    def __len__(self) -> int:
        return self.plan.n_rows

    # Mapping from collections.abc does not supply value equality; the
    # test suites compare backend results with ``==`` against plain dicts.
    def __eq__(self, other) -> bool:
        if isinstance(other, PackedState):
            return self.int_map() == other.int_map()
        if isinstance(other, Mapping):
            return self.int_map() == dict(other)
        return NotImplemented

    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedState({self.plan.name!r}, nodes={self.plan.n_rows}, "
            f"n_patterns={self.n_patterns})"
        )

    # -- propagation buffers --------------------------------------------
    def stuck_row(self, value: int):
        """The injection row for a stuck-at-``value`` fault."""
        if value:
            return self.mask
        if self._zeros is None:
            zeros = np.zeros(self.values.shape[1], dtype=np.uint64)
            zeros.setflags(write=False)
            self._zeros = zeros
        return self._zeros

    def scratch(self, n_local: int):
        """Reusable faulty-value matrix with at least ``n_local`` rows."""
        buf = self._scratch
        if buf is None or buf.shape[0] < n_local:
            buf = self._scratch = np.empty(
                (max(n_local, 16), self.values.shape[1]), dtype=np.uint64
            )
        return buf

    def buffers(self):
        """(detect, tmp, inject) single-row work vectors."""
        if self._detect is None:
            n_words = self.values.shape[1]
            self._detect = np.empty(n_words, dtype=np.uint64)
            self._tmp = np.empty(n_words, dtype=np.uint64)
            self._inject = np.empty(n_words, dtype=np.uint64)
        return self._detect, self._tmp, self._inject

    def node_row(self, name: str):
        """The good-machine value row of one node."""
        return self.values[self.plan.row[name]]

    def inject_branch(self, site: str, pin: int, stuck):
        """Faulty output row of a fanout-branch fault's sink gate.

        Re-evaluates ``site`` with fan-in ``pin`` replaced by the stuck
        row (one word-parallel gate evaluation, same as the interpreted
        injection).  Returns a per-state scratch row — consume before the
        next injection.
        """
        plan = self.plan
        V = self.values
        rows = [
            stuck if p == pin else V[plan.row[fi]]
            for p, fi in enumerate(plan.fanins[site])
        ]
        _detect, _tmp, inject = self.buffers()
        _eval_word_rows(plan.gate_types[site], rows, inject, self.mask)
        return inject


# ---------------------------------------------------------------------------
# Cone plans
# ---------------------------------------------------------------------------


class ConePlan:
    """Straight-line propagation schedule for one fault site's cone.

    Mirrors the compiled cone kernels: every cone gate is evaluated (a
    gate the event-driven walk would skip recomputes its good value and
    contributes a zero diff), so detection words and per-output diffs are
    identical by construction.
    """

    __slots__ = ("start", "n_local", "n_gates", "ops", "po_terms")

    def __init__(self, plan: "CircuitPlan", start: str, order: Sequence[str]):
        if not order or order[0] != start:
            raise SimulationError(f"cone order must start at {start!r}")
        local = {name: i for i, name in enumerate(order)}
        self.start = start
        self.n_local = len(order)
        self.n_gates = len(order) - 1
        ops: List[Tuple[GateType, int, Tuple[Tuple[bool, int], ...]]] = []
        row = plan.row
        for name in order[1:]:
            srcs = tuple(
                (True, local[fi]) if fi in local else (False, row[fi])
                for fi in plan.fanins[name]
            )
            ops.append((plan.gate_types[name], local[name], srcs))
        self.ops = ops
        self.po_terms: List[Tuple[str, int, int]] = [
            (name, row[name], local[name])
            for name in order
            if name in plan.out_set
        ]


def propagate_cone(
    state: PackedState,
    cone: ConePlan,
    injected,
    want_diffs: bool,
) -> Tuple[int, Optional[List[Tuple[str, int]]]]:
    """Propagate one injected fault through its cone plan.

    Returns ``(detect_word, diffs)`` where ``diffs`` lists ``(output,
    diff_word)`` for the cone's primary outputs (``None`` unless
    ``want_diffs``).  All ints are masked exactly like the interpreted
    walk's results.
    """
    V = state.values
    mask = state.mask
    F = state.scratch(cone.n_local)
    F[0] = injected
    for gate_type, out_local, srcs in cone.ops:
        rows = [F[i] if is_local else V[i] for is_local, i in srcs]
        _eval_word_rows(gate_type, rows, F[out_local], mask)
    detect, tmp, _inject = state.buffers()
    detect[:] = 0
    diffs: Optional[List[Tuple[str, int]]] = [] if want_diffs else None
    for name, global_row, local_row in cone.po_terms:
        np.bitwise_xor(F[local_row], V[global_row], out=tmp)
        np.bitwise_or(detect, tmp, out=detect)
        if diffs is not None:
            diffs.append((name, ndarray_to_word(tmp)))
    return ndarray_to_word(detect), diffs


# ---------------------------------------------------------------------------
# Batched fault-parallel propagation
# ---------------------------------------------------------------------------

#: Memory budget (bytes) for one batched value cube; chunks are sized so a
#: chunk's ``n_rows × B × tile_words`` uint64 matrix — plus its staging
#: rows, see :func:`batch_staging_rows` — stays inside it.
BATCH_CHUNK_BYTES = 32 << 20

#: Fewest fault machines a chunk should hold before the word axis tiles:
#: when the full pattern width would squeeze the chunk below this many
#: machines, ``propagate_batch`` shrinks the tile width instead so each
#: ufunc call keeps amortizing dispatch over enough fault columns.
BATCH_TILE_MIN_SITES = 16


def batch_staging_rows(plan: "CircuitPlan") -> int:
    """Row-equivalents of per-chunk scratch beyond the value cube itself.

    Besides the ``(n_rows, B, tile_words)`` cube, a batched chunk holds
    the primary-output staging block used to diff faulty outputs against
    the good matrix (``n_po`` row-equivalents — the diff is computed in
    place on the staged copy, so the block is charged once) plus O(1)
    rows for the stacked forced values, the tiled pattern mask, and the
    per-tile detection reduction.  :func:`batch_capacity` charges these
    against the memory budget so a chunk's true footprint stays inside
    ``chunk_bytes``; counting only the faulty cube (as earlier revisions
    did) let wide-output circuits overshoot the budget by up to 2x.
    """
    return len(plan.outputs) + 3


def _tile_words_for(
    plan: "CircuitPlan", n_words: int, chunk_bytes: int
) -> int:
    """Word-axis tile width for a batched sweep at ``n_words`` patterns.

    Prefers the untiled layout (one tile spanning the full width)
    whenever a chunk at full width still fits ``BATCH_TILE_MIN_SITES``
    fault machines; otherwise the widest tile that does.
    """
    rows = plan.n_rows + batch_staging_rows(plan)
    budget_words = chunk_bytes // (8 * rows * BATCH_TILE_MIN_SITES)
    return max(1, min(n_words, budget_words))


def batch_tile_words(
    plan: "CircuitPlan", n_patterns: int, chunk_bytes: int = BATCH_CHUNK_BYTES
) -> int:
    """Word-axis tile width :func:`propagate_batch` will pick by default."""
    return _tile_words_for(plan, word_count(n_patterns), chunk_bytes)


def batch_capacity(
    plan: "CircuitPlan",
    n_patterns: int,
    chunk_bytes: int = BATCH_CHUNK_BYTES,
    tile_words: Optional[int] = None,
) -> int:
    """Fault machines one batched chunk can hold under the memory budget.

    Charges the full chunk footprint — value cube plus staging rows (see
    :func:`batch_staging_rows`) — at the word-axis tile width the batch
    would actually run (pass ``tile_words`` to pin a different one).
    Thanks to tiling this stays a useful chunk width at any pattern
    budget: widening the patterns narrows the tile, not the chunk.
    """
    n_words = word_count(n_patterns)
    if tile_words is None:
        tile_words = _tile_words_for(plan, n_words, chunk_bytes)
    else:
        tile_words = max(1, min(tile_words, n_words))
    rows = plan.n_rows + batch_staging_rows(plan)
    return chunk_bytes // (8 * rows * tile_words)


def rows_to_words(matrix) -> List[int]:
    """Packed int word of every row of a 2D uint64 matrix (bulk bridge)."""
    n_rows, n_words = matrix.shape
    raw = matrix.tobytes()
    stride = 8 * n_words
    return [
        int.from_bytes(raw[i * stride : (i + 1) * stride], "little")
        for i in range(n_rows)
    ]


def propagate_batch(
    state: PackedState,
    sites: Sequence[Tuple[int, "np.ndarray"]],
    chunk_bytes: int = BATCH_CHUNK_BYTES,
    tile_words: Optional[int] = None,
) -> Tuple["np.ndarray", int]:
    """Propagate many injected faults through the whole circuit at once.

    ``sites`` lists one ``(row, forced_row)`` pair per fault: the plan row
    of the injection site and the faulty value row to pin there (a stuck
    row for stem faults, the re-evaluated sink output for branch faults).

    Where :func:`propagate_cone` walks one fault's cone with one ufunc
    call per gate, this pass stacks ``B`` fault machines into a
    ``(n_rows, B, tile_words)`` cube and re-runs the *grouped*
    full-circuit sweep on it, so each ufunc call covers ``group × B``
    gate evaluations.  Every gate outside a fault's cone recomputes its
    good value from good fan-ins, and the site row is re-pinned after its
    group evaluates, so each column reproduces exactly the faulty machine
    the cone walk would build.  The win is dispatch amortization: per-
    fault work inflates by roughly ``n_gates / mean(|cone|)``, but
    thousands of Python-level cone steps collapse into one sweep of a few
    hundred array calls.

    Wide pattern budgets tile along the word axis: when the full width
    would not fit :data:`BATCH_TILE_MIN_SITES` fault machines inside
    ``chunk_bytes``, the sweep runs per word-tile — same chunking, same
    pinning, each tile evaluating words ``[w0, w1)`` of every machine —
    and ORs each tile's detection columns into its word slice of the
    result.  Word columns never interact in any gate fold (bitwise folds
    are per-bit, masks are per-word), so tiling commutes with evaluation
    and the detection matrix is bit-identical across tile seams.  Pass
    ``tile_words`` to pin the width (tests pin seams; ``None`` picks
    :func:`batch_tile_words`).

    Chunks are capped by ``chunk_bytes`` (cube plus staging rows — see
    :func:`batch_capacity`) and sites are processed in ascending row
    order: every row below a chunk's first site is provably fault-free,
    so it is block-copied from the good matrix instead of re-evaluated.

    Returns ``(detect, gate_evals)`` — a ``(len(sites), n_words)`` uint64
    detection matrix in input order (row ``i`` packs, per pattern,
    whether fault ``i`` flips any primary output), and the number of
    gate-machine evaluations performed.  A gate-machine evaluation is
    word-parallel over the full pattern budget, so tiles are partial
    evaluations summing to one — the count is tile-invariant.
    """
    plan = state.plan
    V = state.values
    n_words = V.shape[1]
    mask = state.mask
    n_rows = plan.n_rows
    n_in = len(plan.inputs)
    n_sites = len(sites)
    rows = np.fromiter((r for r, _ in sites), dtype=np.intp, count=n_sites)
    order = np.argsort(rows, kind="stable")
    po_rows = np.fromiter(
        (r for _, r in plan.output_rows),
        dtype=np.intp,
        count=len(plan.output_rows),
    )
    n_po = len(po_rows)
    # When the output rows form one contiguous band (common: a levelized
    # plan puts late-level gates last), the staged diff can read the cube
    # through a slice view instead of a fancy-index gather.
    po_lo = int(po_rows.min()) if n_po else 0
    po_contiguous = bool(
        n_po and np.array_equal(po_rows, np.arange(po_lo, po_lo + n_po))
    )
    good_po = np.ascontiguousarray(V[po_rows])
    detect = np.zeros((n_sites, n_words), dtype=np.uint64)
    if tile_words is None:
        tile_words = _tile_words_for(plan, n_words, chunk_bytes)
    else:
        tile_words = max(1, min(int(tile_words), n_words))
    capacity = max(
        1,
        chunk_bytes // (8 * (n_rows + batch_staging_rows(plan)) * tile_words),
    )
    gate_evals = 0
    for c0 in range(0, n_sites, capacity):
        chunk = order[c0 : c0 + capacity]
        B = len(chunk)
        site_rows = rows[chunk]
        forced_full = np.stack([sites[i][1] for i in chunk])
        # Rows below the chunk's first site carry no fault effect; copy.
        copy_to = max(n_in, int(site_rows[0]))
        bidx = np.arange(B)
        n_pre = int(np.searchsorted(site_rows, copy_to, side="left"))
        # Chunk sites are sorted by row, so the machines a logic group
        # must re-pin form a contiguous slice: two binary searches per
        # group here replace two full boolean passes per group per tile.
        group_lo = np.fromiter(
            (max(g[2], copy_to) for g in plan.logic_groups),
            dtype=np.intp,
            count=len(plan.logic_groups),
        )
        group_hi = np.fromiter(
            (g[3] for g in plan.logic_groups),
            dtype=np.intp,
            count=len(plan.logic_groups),
        )
        bounds_lo = np.searchsorted(site_rows, group_lo, side="left")
        bounds_hi = np.searchsorted(site_rows, group_hi, side="left")
        staged = np.empty((n_po, B, tile_words), dtype=np.uint64)
        for w0 in range(0, n_words, tile_words):
            w1 = min(w0 + tile_words, n_words)
            tw = w1 - w0
            flat = np.empty((n_rows, B * tw), dtype=np.uint64)
            cube = flat.reshape(n_rows, B, tw)
            cube[:copy_to] = V[:copy_to, None, w0:w1]
            forced = forced_full[:, w0:w1]
            if n_pre:
                cube[site_rows[:n_pre], bidx[:n_pre]] = forced[:n_pre]
            # The flat 2D view evaluates with simple strides; the pattern
            # mask tiles across fault machines (the cube's inner axis is
            # the tile's words).
            mask_t = mask[w0:w1]
            flat_mask = mask_t if tw == 1 else np.tile(mask_t, B)
            for group, (gate_type, arity, lo, hi, fanin_rows) in enumerate(
                plan.logic_groups
            ):
                if hi <= copy_to:
                    continue
                lo_eff = max(lo, copy_to)
                _eval_word_group(
                    gate_type,
                    arity,
                    fanin_rows[lo_eff - lo :],
                    flat,
                    flat[lo_eff:hi],
                    flat_mask,
                )
                p0, p1 = int(bounds_lo[group]), int(bounds_hi[group])
                if p1 > p0:
                    cube[site_rows[p0:p1], bidx[p0:p1]] = forced[p0:p1]
            # Diff faulty outputs against the good matrix in place on one
            # staged copy (charged in batch_staging_rows), then OR-reduce
            # into this tile's word slice of the detection matrix.
            st = staged if tw == tile_words else np.empty(
                (n_po, B, tw), dtype=np.uint64
            )
            if po_contiguous:
                np.bitwise_xor(
                    cube[po_lo : po_lo + n_po],
                    good_po[:, None, w0:w1],
                    out=st,
                )
            else:
                np.take(cube, po_rows, axis=0, out=st)
                np.bitwise_xor(st, good_po[:, None, w0:w1], out=st)
            detect[chunk, w0:w1] = np.bitwise_or.reduce(st, axis=0)
        gate_evals += (n_rows - copy_to) * B
    return detect, gate_evals


# ---------------------------------------------------------------------------
# The circuit plan
# ---------------------------------------------------------------------------


class _EdgeGroup:
    """One (sens-kind, side-arity) batch of fanout edges at a level."""

    __slots__ = ("kind", "lo", "hi", "sink_rows", "side_rows", "side_edges")

    def __init__(self, kind, lo, hi, sink_rows, side_rows, side_edges):
        self.kind = kind
        self.lo = lo
        self.hi = hi
        self.sink_rows = sink_rows
        self.side_rows = side_rows  # node rows (plain COP backward)
        self.side_edges = side_edges  # in-edge ids (placement backward)


class _StemGroup:
    """One (is_output, branch-count) batch of stems at a level."""

    __slots__ = ("is_out", "node_rows", "contribs")

    def __init__(self, is_out, node_rows, contribs):
        self.is_out = is_out
        self.node_rows = node_rows
        self.contribs = contribs  # (n_stems, n_branches) edge ids


class _Level:
    """Per-level slices for the backward passes (and placement forward)."""

    __slots__ = (
        "level", "node_lo", "node_hi", "edge_lo", "edge_hi",
        "edge_groups", "stem_groups", "fwd_groups",
    )

    def __init__(self, level, node_lo, node_hi):
        self.level = level
        self.node_lo = node_lo
        self.node_hi = node_hi
        self.edge_lo = 0
        self.edge_hi = 0
        self.edge_groups: List[_EdgeGroup] = []
        self.stem_groups: List[_StemGroup] = []
        self.fwd_groups: List[int] = []  # indexes into plan.logic_groups


class CircuitPlan:
    """All index arrays needed to simulate one circuit structure.

    Built once per structural hash (see :func:`get_plan`); immutable
    afterwards except for the lazily-populated cone-plan cache.
    """

    def __init__(self, circuit: Circuit) -> None:
        _require_numpy()
        circuit.validate()
        with obs.span("npsim.plan", circuit=circuit.name):
            self._build(circuit)
        obs.count("npsim.plans")

    def _build(self, circuit: Circuit) -> None:
        self.structural_hash = circuit.structural_hash()
        self.name = circuit.name
        topo = circuit.topological_order()
        level = circuit.levels()
        self.topo = topo
        self.inputs = list(circuit.inputs)
        self.outputs = list(circuit.outputs)
        self.out_set = frozenset(self.outputs)
        self.fanins: Dict[str, Tuple[str, ...]] = {}
        self.gate_types: Dict[str, GateType] = {}
        fanouts: Dict[str, List[Tuple[str, int]]] = {}
        gate_names: List[str] = []
        for name in topo:
            node = circuit.node(name)
            fanouts[name] = list(circuit.fanouts(name))
            if node.is_gate:
                gate_names.append(name)
                self.fanins[name] = tuple(node.fanins)
                self.gate_types[name] = node.gate_type

        # -- row assignment: inputs first, then gates grouped by
        # (level, gate_type, arity).  Levels strictly separate driver from
        # sink (level = 1 + max fan-in level), so group-major evaluation
        # in level order respects every dependency and each group's
        # outputs are one contiguous slice.
        groups_map: "OrderedDict[Tuple[int, str, int], List[str]]" = (
            OrderedDict()
        )
        for name in gate_names:
            key = (level[name], self.gate_types[name].value,
                   len(self.fanins[name]))
            groups_map.setdefault(key, []).append(name)
        row: Dict[str, int] = {}
        for i, name in enumerate(self.inputs):
            row[name] = i
        pos = len(self.inputs)
        group_specs: List[Tuple[GateType, int, int, int, List[str]]] = []
        for key in sorted(groups_map):
            members = groups_map[key]
            lo = pos
            for name in members:
                row[name] = pos
                pos += 1
            group_specs.append(
                (GateType(key[1]), key[2], lo, pos, members)
            )
        self.row = row
        self.n_rows = pos
        self.levels_of_row = [0] * pos
        for name, r in row.items():
            self.levels_of_row[r] = level[name]

        # -- logic groups with fan-in index matrices
        self.logic_groups: List[
            Tuple[GateType, int, int, int, "np.ndarray"]
        ] = []
        for gate_type, arity, lo, hi, members in group_specs:
            fanin_rows = np.empty((hi - lo, arity), dtype=np.intp)
            for g, name in enumerate(members):
                for k, fi in enumerate(self.fanins[name]):
                    fanin_rows[g, k] = row[fi]
            self.logic_groups.append((gate_type, arity, lo, hi, fanin_rows))

        # -- dict insertion order of the interpreted simulator
        self.entry_rows: List[Tuple[str, int]] = [
            (name, row[name]) for name in self.inputs
        ] + [(name, row[name]) for name in gate_names]
        self.output_rows: List[Tuple[str, int]] = [
            (name, row[name]) for name in self.outputs
        ]

        # -- per-level skeleton (node row ranges; rows are level-major,
        # so level L spans [bounds[L], bounds[L+1]))
        max_level = max(level.values(), default=0)
        counts = [0] * (max_level + 1)
        for lv in self.levels_of_row:
            counts[lv] += 1
        bounds = [0] * (max_level + 2)
        for lv in range(max_level + 1):
            bounds[lv + 1] = bounds[lv] + counts[lv]
        self.levels: List[_Level] = []
        for lv in range(max_level, -1, -1):
            self.levels.append(_Level(lv, bounds[lv], bounds[lv + 1]))
        self._level_entry = {
            entry.level: entry for entry in self.levels
        }
        for gi, (_gt, _ar, lo, _hi, _f) in enumerate(self.logic_groups):
            self._level_entry[self.levels_of_row[lo]].fwd_groups.append(gi)

        # -- edge enumeration, grouped (driver level, sens kind, side
        # arity) so the backward passes touch contiguous id ranges.  The
        # per-stem contribution matrices keep the interpreter's fanout
        # order, which is what the escape folds are sensitive to.
        def edge_kind(sink: str) -> Tuple[str, int]:
            gt = self.gate_types[sink]
            n_side = len(self.fanins[sink]) - 1
            # a single-input AND/OR sensitizes unconditionally, same as
            # the "one" kinds (the empty fold is exactly 1.0)
            if n_side > 0 and gt in _AND_TYPES:
                return "and", n_side
            if n_side > 0 and gt in _OR_TYPES:
                return "or", n_side
            return "one", 0

        by_level: Dict[int, "OrderedDict[Tuple[str, int], List[tuple]]"] = {}
        stem_edges: Dict[str, List[Tuple[str, str, int]]] = {}
        for name in topo:
            stem_edges[name] = []
            for sink, pin in fanouts[name]:
                key = (name, sink, pin)
                stem_edges[name].append(key)
                kind, n_side = edge_kind(sink)
                by_level.setdefault(level[name], OrderedDict()).setdefault(
                    (kind, n_side), []
                ).append(key)
        self.edge_keys: List[Tuple[str, str, int]] = []
        self.edge_id: Dict[Tuple[str, str, int], int] = {}
        edge_driver_rows: List[int] = []
        pending_groups: Dict[int, List[Tuple[str, int, int, int, List[tuple]]]] = {}
        for entry in self.levels:  # descending level
            entry.edge_lo = len(self.edge_keys)
            groups = by_level.get(entry.level)
            if groups:
                for (kind, n_side) in sorted(groups):
                    members = groups[(kind, n_side)]
                    lo = len(self.edge_keys)
                    for key in members:
                        self.edge_id[key] = len(self.edge_keys)
                        self.edge_keys.append(key)
                        edge_driver_rows.append(row[key[0]])
                    pending_groups.setdefault(entry.level, []).append(
                        (kind, n_side, lo, len(self.edge_keys), members)
                    )
            entry.edge_hi = len(self.edge_keys)
        self.n_edges = len(self.edge_keys)
        self.edge_driver_rows = np.asarray(edge_driver_rows, dtype=np.intp)

        # side matrices need every edge id assigned first
        for entry in self.levels:
            for kind, n_side, lo, hi, members in pending_groups.get(
                entry.level, ()
            ):
                n_e = hi - lo
                sink_rows = np.empty(n_e, dtype=np.intp)
                side_rows = np.empty((n_e, n_side), dtype=np.intp)
                side_edges = np.empty((n_e, n_side), dtype=np.intp)
                for e, (driver, sink, pin) in enumerate(members):
                    sink_rows[e] = row[sink]
                    j = 0
                    for p, fi in enumerate(self.fanins[sink]):
                        if p == pin:
                            continue
                        if j < n_side:
                            side_rows[e, j] = row[fi]
                            side_edges[e, j] = self.edge_id[(fi, sink, p)]
                        j += 1
                entry.edge_groups.append(
                    _EdgeGroup(kind, lo, hi, sink_rows, side_rows, side_edges)
                )
            # stem groups: (is_output, n_branches) batches of this level
            stems: "OrderedDict[Tuple[bool, int], List[str]]" = OrderedDict()
            for name in self._names_of_level(entry):
                key = (name in self.out_set, len(stem_edges[name]))
                stems.setdefault(key, []).append(name)
            for (is_out, n_br) in sorted(stems):
                members = stems[(is_out, n_br)]
                node_rows = np.asarray(
                    [row[m] for m in members], dtype=np.intp
                )
                contribs = np.empty((len(members), n_br), dtype=np.intp)
                for s, m in enumerate(members):
                    for j, key in enumerate(stem_edges[m]):
                        contribs[s, j] = self.edge_id[key]
                entry.stem_groups.append(
                    _StemGroup(is_out, node_rows, contribs)
                )

        # in-edge ids per logic group (placement forward gathers T, the
        # branch-post values, instead of node probabilities)
        self.place_in_edges: List[Optional["np.ndarray"]] = []
        for gate_type, arity, lo, hi, _f in self.logic_groups:
            if arity == 0:
                self.place_in_edges.append(None)
                continue
            mat = np.empty((hi - lo, arity), dtype=np.intp)
            base = lo
            for g in range(hi - lo):
                name = self._row_names[base + g]
                for k in range(arity):
                    mat[g, k] = self.edge_id[
                        (self.fanins[name][k], name, k)
                    ]
            self.place_in_edges.append(mat)

        # cone cache
        self._cones: Dict[str, ConePlan] = {}
        self._lock = threading.Lock()

    # -- construction helpers -------------------------------------------
    @property
    def _row_names(self) -> List[str]:
        names = getattr(self, "_row_names_cache", None)
        if names is None:
            names = [""] * self.n_rows
            for name, r in self.row.items():
                names[r] = name
            self._row_names_cache = names
        return names

    def _names_of_level(self, entry: _Level) -> List[str]:
        return self._row_names[entry.node_lo : entry.node_hi]

    def delta_aux(self) -> "_DeltaAux":
        """The (cached) dirty-subset index structures for placement deltas."""
        aux = getattr(self, "_delta_aux", None)
        if aux is None:
            with self._lock:
                aux = getattr(self, "_delta_aux", None)
                if aux is None:
                    aux = _DeltaAux(self)
                    self._delta_aux = aux
        return aux

    # ------------------------------------------------------------------
    # Logic pass
    # ------------------------------------------------------------------
    def run_matrix(self, stimulus: Mapping[str, int], n_patterns: int):
        """Fault-free simulation into a fresh ``(n_rows, n_words)`` matrix."""
        n_words = word_count(n_patterns)
        V = np.empty((self.n_rows, n_words), dtype=np.uint64)
        mask = mask_array(n_patterns)
        for i, name in enumerate(self.inputs):
            V[i] = word_to_ndarray(stimulus.get(name, 0), n_patterns)
        for gate_type, arity, lo, hi, fanin_rows in self.logic_groups:
            _eval_word_group(gate_type, arity, fanin_rows, V, V[lo:hi], mask)
        return V

    def run_state(
        self, stimulus: Mapping[str, int], n_patterns: int
    ) -> PackedState:
        """Fault-free simulation as a :class:`PackedState`."""
        return PackedState(
            self, self.run_matrix(stimulus, n_patterns), n_patterns
        )

    def logic_values(
        self, stimulus: Mapping[str, int], n_patterns: int
    ) -> Dict[str, int]:
        """``LogicSimulator.run``-compatible node → int-word dict."""
        return self.run_state(stimulus, n_patterns).int_map()

    def state_from_values(
        self, good_values: Mapping[str, int], n_patterns: int
    ) -> PackedState:
        """Pack an existing int-word mapping into array form."""
        n_words = word_count(n_patterns)
        V = np.empty((self.n_rows, n_words), dtype=np.uint64)
        for name, r in self.row.items():
            V[r] = word_to_ndarray(good_values[name], n_patterns)
        state = PackedState(self, V, n_patterns)
        if isinstance(good_values, dict):
            state._ints = good_values  # already materialized; share it
        return state

    # ------------------------------------------------------------------
    # Cone propagation
    # ------------------------------------------------------------------
    def cone(
        self, start: str, order_fn: Callable[[str], Sequence[str]]
    ) -> ConePlan:
        """The (cached) cone plan for fault site ``start``."""
        plan = self._cones.get(start)
        if plan is None:
            with self._lock:
                plan = self._cones.get(start)
                if plan is None:
                    plan = ConePlan(self, start, order_fn(start))
                    self._cones[start] = plan
        return plan

    # ------------------------------------------------------------------
    # COP forward pass
    # ------------------------------------------------------------------
    def cop_forward(self, pget) -> Dict[str, float]:
        """Forward COP pass; matches ``signal_probabilities`` exactly.

        ``pget`` is ``input_probabilities.get`` (the compiled kernels use
        the same calling convention).
        """
        P = np.empty(self.n_rows, dtype=np.float64)
        for i, name in enumerate(self.inputs):
            P[i] = float(pget(name, 0.5))
        for gate_type, arity, lo, hi, fanin_rows in self.logic_groups:
            _eval_prob_group(gate_type, arity, P[fanin_rows], P[lo:hi])
        row = self.row
        return {name: float(P[row[name]]) for name in self.topo}

    # ------------------------------------------------------------------
    # COP backward pass
    # ------------------------------------------------------------------
    def float_rows(self, values: Mapping[str, float]):
        """Gather a node → float mapping into row order."""
        P = np.empty(self.n_rows, dtype=np.float64)
        for name, r in self.row.items():
            P[r] = values[name]
        return P

    def cop_backward(
        self, probability: Mapping[str, float], stem_combine: str
    ) -> Tuple[Dict[str, float], Dict[Tuple[str, str, int], float]]:
        """Backward COP pass; matches ``observabilities`` exactly."""
        P = self.float_rows(probability)
        NO = np.empty(self.n_rows, dtype=np.float64)
        BO = np.empty(self.n_edges, dtype=np.float64)
        use_max = stem_combine == "max"
        for entry in self.levels:  # descending driver level
            for grp in entry.edge_groups:
                sunk = NO[grp.sink_rows]
                if grp.kind == "one":
                    BO[grp.lo : grp.hi] = sunk * 1.0
                else:
                    BO[grp.lo : grp.hi] = sunk * _sens_fold(
                        grp.kind, P[grp.side_rows]
                    )
            for grp in entry.stem_groups:
                n_br = grp.contribs.shape[1]
                if use_max:
                    if grp.is_out:
                        m = np.ones(len(grp.node_rows), dtype=np.float64)
                    elif n_br == 0:
                        NO[grp.node_rows] = 0.0
                        continue
                    else:
                        m = BO[grp.contribs[:, 0]].copy()
                    start_j = 0 if grp.is_out else 1
                    for j in range(start_j, n_br):
                        np.maximum(m, BO[grp.contribs[:, j]], out=m)
                    NO[grp.node_rows] = m
                    continue
                esc = np.ones(len(grp.node_rows), dtype=np.float64)
                if grp.is_out:
                    esc *= 1.0 - 1.0
                for j in range(n_br):
                    esc *= 1.0 - BO[grp.contribs[:, j]]
                NO[grp.node_rows] = 1.0 - esc
        row = self.row
        node_obs = {
            name: float(NO[row[name]]) for name in reversed(self.topo)
        }
        branch_obs = {
            key: float(BO[i]) for i, key in enumerate(self.edge_keys)
        }
        return node_obs, branch_obs

    # ------------------------------------------------------------------
    # Placement-aware pass (evaluate_placement)
    # ------------------------------------------------------------------
    def placement(self, pin_get, sctl, bctl, sobs, bobs, cpt, cof):
        """Forward+backward placement pass; compiled-kernel contract.

        Returns the seven dicts of a
        :class:`~repro.core.virtual.VirtualEvaluation`.  Control and
        observation sites are data: array sweeps cover the uncontrolled
        common case and the few controlled/observed sites are patched as
        scalars between level sweeps, preserving the interpreter's exact
        float sequences.
        """
        row = self.row
        edge_id = self.edge_id
        Q = np.empty(self.n_rows, dtype=np.float64)
        S = np.empty(self.n_rows, dtype=np.float64)
        T = np.empty(self.n_edges, dtype=np.float64)
        sctl_rows = [(row[name], c) for name, c in sctl.items()]
        bctl_ids = [(edge_id[key], c) for key, c in bctl.items()]

        # ------------------------------------------------------ forward
        for entry in reversed(self.levels):  # ascending level
            if entry.level == 0:
                for i, name in enumerate(self.inputs):
                    Q[i] = pin_get(name)
            for gi in entry.fwd_groups:
                gate_type, arity, lo, hi, _f = self.logic_groups[gi]
                in_edges = self.place_in_edges[gi]
                cols = (
                    T[in_edges]
                    if in_edges is not None
                    else np.empty((hi - lo, 0), dtype=np.float64)
                )
                _eval_prob_group(gate_type, arity, cols, Q[lo:hi])
            nlo, nhi = entry.node_lo, entry.node_hi
            S[nlo:nhi] = Q[nlo:nhi]
            for r, ctl in sctl_rows:
                if nlo <= r < nhi:
                    S[r] = cpt(ctl, float(Q[r]))
            elo, ehi = entry.edge_lo, entry.edge_hi
            if ehi > elo:
                T[elo:ehi] = S[self.edge_driver_rows[elo:ehi]]
                for e, ctl in bctl_ids:
                    if elo <= e < ehi:
                        T[e] = cpt(ctl, float(T[e]))

        # ----------------------------------------------------- backward
        # Factors/zero-multipliers are precomputed full-length: an
        # uncontrolled edge multiplies by exactly 1.0 (IEEE-identity) and
        # an unobserved one by 1.0, so the sweeps stay branch-free while
        # reproducing the interpreter's ``f * x`` / ``z * (1.0 - 1.0)``.
        F_edge = np.ones(self.n_edges, dtype=np.float64)
        Zm_edge = np.ones(self.n_edges, dtype=np.float64)
        for e, ctl in bctl_ids:
            F_edge[e] = cof(ctl)
        for key in bobs:
            Zm_edge[edge_id[key]] = 1.0 - 1.0
        F_stem = np.ones(self.n_rows, dtype=np.float64)
        Zm_stem = np.ones(self.n_rows, dtype=np.float64)
        for r, ctl in sctl_rows:
            F_stem[r] = cof(ctl)
        for name in sobs:
            Zm_stem[row[name]] = 1.0 - 1.0
        WO = np.empty(self.n_rows, dtype=np.float64)
        OB = np.empty(self.n_edges, dtype=np.float64)
        PO = np.empty(self.n_rows, dtype=np.float64)
        for entry in self.levels:  # descending level
            for grp in entry.edge_groups:
                if grp.kind == "one":
                    x = WO[grp.sink_rows] * 1.0
                else:
                    x = WO[grp.sink_rows] * _sens_fold(
                        grp.kind, T[grp.side_edges]
                    )
                z = 1.0 - F_edge[grp.lo : grp.hi] * x
                z *= Zm_edge[grp.lo : grp.hi]
                np.subtract(1.0, z, out=OB[grp.lo : grp.hi])
            for grp in entry.stem_groups:
                esc = np.ones(len(grp.node_rows), dtype=np.float64)
                if grp.is_out:
                    esc *= 1.0 - 1.0
                for j in range(grp.contribs.shape[1]):
                    esc *= 1.0 - OB[grp.contribs[:, j]]
                PO[grp.node_rows] = 1.0 - esc
            nlo, nhi = entry.node_lo, entry.node_hi
            z2 = 1.0 - F_stem[nlo:nhi] * PO[nlo:nhi]
            z2 *= Zm_stem[nlo:nhi]
            np.subtract(1.0, z2, out=WO[nlo:nhi])

        # ------------------------------------------------------ returns
        stem_pre = {name: float(Q[row[name]]) for name in self.topo}
        stem_post = {name: float(S[row[name]]) for name in self.topo}
        branch_pre = {
            key: float(S[row[key[0]]]) for key in self.edge_keys
        }
        branch_post = {
            key: float(T[edge_id[key]]) for key in self.edge_keys
        }
        wire_obs = {
            name: float(WO[row[name]]) for name in reversed(self.topo)
        }
        branch_obs = {
            key: float(OB[i]) for i, key in enumerate(self.edge_keys)
        }
        stem_post_obs = {
            name: float(PO[row[name]]) for name in reversed(self.topo)
        }
        return (
            stem_pre, stem_post, branch_pre, branch_post,
            wire_obs, branch_obs, stem_post_obs,
        )


# ---------------------------------------------------------------------------
# Vectorized placement deltas (IncrementalEvaluator's numpy fast path)
# ---------------------------------------------------------------------------

#: Mean rows-per-level below which the vectorized delta loses to the
#: interpreted heap walk.  Each dirty level costs the array engine a
#: fixed ~20µs of slice bookkeeping regardless of width, while the
#: interpreter pays ~1µs per actually-dirty node; measured break-even
#: sits near 26 rows/level, and narrow-level circuits (deep multipliers,
#: RPR corridors) regress well below 1x.  Overridable via the
#: ``REPRO_NP_DELTA_MIN_WIDTH`` environment variable (``0`` forces the
#: vectorized path on, which the equivalence suites use to pin tiny
#: circuits onto it).
DELTA_MIN_MEAN_WIDTH = 32.0


def delta_profitable(plan: "CircuitPlan") -> bool:
    """Whether :class:`PlacementDelta` is expected to beat the
    interpreted dirty-cone walk on this plan (see
    :data:`DELTA_MIN_MEAN_WIDTH`; answers, never raises, without numpy).
    """
    raw = os.environ.get("REPRO_NP_DELTA_MIN_WIDTH")
    try:
        min_width = DELTA_MIN_MEAN_WIDTH if not raw else float(raw)
    except ValueError:
        min_width = DELTA_MIN_MEAN_WIDTH
    if min_width <= 0:
        return True
    return plan.n_rows / max(len(plan.levels), 1) >= min_width


#: Per-site (control-kind, observed) summary meaning "no point here".
_NO_SITE = (None, False)


def _take_ranges(data, starts, counts):
    """Concatenated ``data[starts[i] : starts[i] + counts[i]]`` slices."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=data.dtype)
    offsets = np.arange(total) - np.repeat(counts.cumsum() - counts, counts)
    return data[np.repeat(starts, counts) + offsets]


class _DeltaAux:
    """Plan-level index structures for dirty-level re-propagation.

    Built once per plan (see :meth:`CircuitPlan.delta_aux`) and shared by
    every :class:`PlacementDelta`: the level-entry index of every row and
    CSR sink/fan-in adjacency in row space, which is all the delta sweeps
    need on top of the plan's own level tables.
    """

    def __init__(self, plan: "CircuitPlan") -> None:
        n_rows, n_edges = plan.n_rows, plan.n_edges
        row = plan.row
        # index into plan.levels (descending order) of every row
        entry_of_row = np.empty(n_rows, dtype=np.intp)
        for j, entry in enumerate(plan.levels):
            entry_of_row[entry.node_lo : entry.node_hi] = j
        self.entry_of_row = entry_of_row
        self.edge_sink_rows = np.fromiter(
            (row[key[1]] for key in plan.edge_keys),
            dtype=np.intp,
            count=n_edges,
        )
        # CSR fan-in rows per gate row (inputs have none)
        fcounts = np.zeros(n_rows + 1, dtype=np.intp)
        for name, fins in plan.fanins.items():
            fcounts[row[name] + 1] = len(fins)
        self.fanin_indptr = fcounts.cumsum()
        fanin_rows = np.empty(int(self.fanin_indptr[-1]), dtype=np.intp)
        for name, fins in plan.fanins.items():
            base = self.fanin_indptr[row[name]]
            for k, fi in enumerate(fins):
                fanin_rows[base + k] = row[fi]
        self.fanin_rows = fanin_rows


class PlacementDelta:
    """Vectorized dirty-cone re-propagation against a cached base.

    The incremental evaluator re-propagates the placement passes from a
    few dirty sites, stopping the moment a recomputed value equals the
    cached base (exact float equality).  This class runs those deltas at
    *level granularity*: a level whose inputs moved is recomputed with
    the exact per-level slice code of :meth:`CircuitPlan.placement`
    (contiguous array sweeps, no per-row bookkeeping), and a level no
    dirt reaches is skipped entirely — its work-array slices still hold
    the base values.

    Bit-identity: recomputing a *clean* row of a dirty level reads the
    same finalized inputs as the base pass and applies the same grouped
    formulas in the same fold order, so it reproduces the base value to
    the last ulp (evaluation is elementwise; columns never interact).
    Changed values are therefore exactly the rows the interpreter's
    event-driven walk would have patched, and the patch dicts — built by
    comparing recomputed slices against the base — match the interpreted
    delta verbatim.  The property and fuzz suites pin this.

    Between deltas the work arrays equal the base: each call recomputes
    only dirty-level slices and restores them from the base copies
    before returning, so a delta costs O(dirty levels), not O(circuit).
    """

    def __init__(self, plan: "CircuitPlan") -> None:
        _require_numpy()
        self.plan = plan
        self.aux = plan.delta_aux()

    # ------------------------------------------------------------------
    def rebase(self, base, base_stems, base_branches, cof) -> None:
        """Capture one placement evaluation as the delta base.

        ``base`` carries the seven dicts of a
        :class:`~repro.core.virtual.VirtualEvaluation`; ``base_stems`` /
        ``base_branches`` map sites to (control-kind, observed) summaries
        of the base placement; ``cof`` is the control observability
        factor function.
        """
        plan = self.plan
        n_rows, n_edges = plan.n_rows, plan.n_edges
        row, edge_id = plan.row, plan.edge_id
        self.Qb = plan.float_rows(base.stem_pre)
        self.Sb = plan.float_rows(base.stem_post)
        self.WOb = plan.float_rows(base.wire_obs)
        self.POb = plan.float_rows(base.stem_post_obs)
        Tb = np.empty(n_edges, dtype=np.float64)
        OBb = np.empty(n_edges, dtype=np.float64)
        bpost, bobs = base.branch_post, base.branch_obs
        for i, key in enumerate(plan.edge_keys):
            Tb[i] = bpost[key]
            OBb[i] = bobs[key]
        self.Tb, self.OBb = Tb, OBb
        # factor / zero-multiplier arrays of the base placement (same
        # IEEE-identity convention as the full placement pass)
        Fs = np.ones(n_rows, dtype=np.float64)
        Zms = np.ones(n_rows, dtype=np.float64)
        Fe = np.ones(n_edges, dtype=np.float64)
        Zme = np.ones(n_edges, dtype=np.float64)
        sctl: Dict[int, object] = {}
        bctl: Dict[int, object] = {}
        for name, (ctrl, observed) in base_stems.items():
            r = row[name]
            if ctrl is not None:
                Fs[r] = cof(ctrl)
                sctl[r] = ctrl
            if observed:
                Zms[r] = 1.0 - 1.0
        for key, (ctrl, observed) in base_branches.items():
            e = edge_id[key]
            if ctrl is not None:
                Fe[e] = cof(ctrl)
                bctl[e] = ctrl
            if observed:
                Zme[e] = 1.0 - 1.0
        self.Fsb, self.Zmsb, self.Feb, self.Zmeb = Fs, Zms, Fe, Zme
        self._sctl_base = sctl
        self._bctl_base = bctl
        self._base_stems = dict(base_stems)
        self._base_branches = dict(base_branches)
        self.Qw, self.Sw = self.Qb.copy(), self.Sb.copy()
        self.Tw = self.Tb.copy()
        self.WOw, self.POw = self.WOb.copy(), self.POb.copy()
        self.OBw = self.OBb.copy()
        self.Fsw, self.Zmsw = Fs.copy(), Zms.copy()
        self.Few, self.Zmew = Fe.copy(), Zme.copy()

    # ------------------------------------------------------------------
    def delta(self, stem_diff, branch_diff, cpt, cof):
        """Patch dicts and recompute count for a dirty-site overlay.

        ``stem_diff`` / ``branch_diff`` map changed sites to their new
        (control-kind, observed) summaries; ``cpt`` / ``cof`` are the
        control probability transform and observability factor.  Returns
        ``(patches, recomputed)`` where ``patches`` is the seven-tuple of
        patch dicts the interpreted delta produces (missing key = base
        value unchanged).
        """
        plan, aux = self.plan, self.aux
        row, edge_id = plan.row, plan.edge_id
        names = plan._row_names
        edge_keys = plan.edge_keys
        levels = plan.levels
        n_entries = len(levels)
        edge_driver_rows = plan.edge_driver_rows
        Qw, Sw, Tw = self.Qw, self.Sw, self.Tw
        WOw, POw, OBw = self.WOw, self.POw, self.OBw

        # -- overlay the dirty sites onto the work factor arrays
        sctl = dict(self._sctl_base)
        bctl = dict(self._bctl_base)
        dirty_rows: List[int] = []
        dirty_edges: List[int] = []
        for site, (ctrl, observed) in stem_diff.items():
            r = row[site]
            dirty_rows.append(r)
            self.Fsw[r] = cof(ctrl) if ctrl is not None else 1.0
            self.Zmsw[r] = 1.0 - 1.0 if observed else 1.0
            if ctrl is not None:
                sctl[r] = ctrl
            else:
                sctl.pop(r, None)
        for key, (ctrl, observed) in branch_diff.items():
            e = edge_id[key]
            dirty_edges.append(e)
            self.Few[e] = cof(ctrl) if ctrl is not None else 1.0
            self.Zmew[e] = 1.0 - 1.0 if observed else 1.0
            if ctrl is not None:
                bctl[e] = ctrl
            else:
                bctl.pop(e, None)
        sctl_items = list(sctl.items())
        bctl_items = list(bctl.items())

        # -- forward: mark the levels of control-relevant dirty sites,
        # sweep ascending, re-marking a sink's level only when some
        # in-edge branch-post moved (the heap walk's trigger rule)
        fwd_dirty = np.zeros(n_entries, dtype=bool)
        for site, state in stem_diff.items():
            if (
                state[0] is not None
                or self._base_stems.get(site, _NO_SITE)[0] is not None
            ):
                fwd_dirty[aux.entry_of_row[row[site]]] = True
        for key, state in branch_diff.items():
            if (
                state[0] is not None
                or self._base_branches.get(key, _NO_SITE)[0] is not None
            ):
                fwd_dirty[aux.entry_of_row[row[key[0]]]] = True
        f_touched: List[int] = []
        changed_T: List["np.ndarray"] = []
        for j in range(n_entries - 1, -1, -1):  # ascending level
            if not fwd_dirty[j]:
                continue
            entry = levels[j]
            f_touched.append(j)
            # inputs (level 0) keep their base probabilities
            for gi in entry.fwd_groups:
                gate_type, arity, lo, hi, _f = plan.logic_groups[gi]
                in_edges = plan.place_in_edges[gi]
                cols = (
                    Tw[in_edges]
                    if in_edges is not None
                    else np.empty((hi - lo, 0), dtype=np.float64)
                )
                _eval_prob_group(gate_type, arity, cols, Qw[lo:hi])
            nlo, nhi = entry.node_lo, entry.node_hi
            Sw[nlo:nhi] = Qw[nlo:nhi]
            for r, ctl in sctl_items:
                if nlo <= r < nhi:
                    Sw[r] = cpt(ctl, float(Qw[r]))
            elo, ehi = entry.edge_lo, entry.edge_hi
            if ehi > elo:
                Tw[elo:ehi] = Sw[edge_driver_rows[elo:ehi]]
                for e, ctl in bctl_items:
                    if elo <= e < ehi:
                        Tw[e] = cpt(ctl, float(Tw[e]))
                moved = Tw[elo:ehi] != self.Tb[elo:ehi]
                if moved.any():
                    ch = np.nonzero(moved)[0] + elo
                    changed_T.append(ch)
                    fwd_dirty[
                        aux.entry_of_row[aux.edge_sink_rows[ch]]
                    ] = True

        # -- backward: mark the levels of dirty sites, of branch-diff
        # drivers, and of the fan-ins of every sink whose branch-post
        # moved; sweep descending, re-marking fan-in levels whenever a
        # wire observability moves
        bwd_dirty = np.zeros(n_entries, dtype=bool)
        for site in stem_diff:
            bwd_dirty[aux.entry_of_row[row[site]]] = True
        for key in branch_diff:
            bwd_dirty[aux.entry_of_row[row[key[0]]]] = True
        if changed_T:
            sinks = np.unique(
                aux.edge_sink_rows[np.concatenate(changed_T)]
            )
            fstarts = aux.fanin_indptr[sinks]
            fcnt = aux.fanin_indptr[sinks + 1] - fstarts
            fans = _take_ranges(aux.fanin_rows, fstarts, fcnt)
            bwd_dirty[aux.entry_of_row[fans]] = True
        b_touched: List[int] = []
        for j in range(n_entries):  # descending level
            if not bwd_dirty[j]:
                continue
            entry = levels[j]
            b_touched.append(j)
            for grp in entry.edge_groups:
                if grp.kind == "one":
                    x = WOw[grp.sink_rows] * 1.0
                else:
                    x = WOw[grp.sink_rows] * _sens_fold(
                        grp.kind, Tw[grp.side_edges]
                    )
                z = 1.0 - self.Few[grp.lo : grp.hi] * x
                z *= self.Zmew[grp.lo : grp.hi]
                np.subtract(1.0, z, out=OBw[grp.lo : grp.hi])
            for grp in entry.stem_groups:
                esc = np.ones(len(grp.node_rows), dtype=np.float64)
                if grp.is_out:
                    esc *= 1.0 - 1.0
                for jj in range(grp.contribs.shape[1]):
                    esc *= 1.0 - OBw[grp.contribs[:, jj]]
                POw[grp.node_rows] = 1.0 - esc
            nlo, nhi = entry.node_lo, entry.node_hi
            z2 = 1.0 - self.Fsw[nlo:nhi] * POw[nlo:nhi]
            z2 *= self.Zmsw[nlo:nhi]
            np.subtract(1.0, z2, out=WOw[nlo:nhi])
            moved = WOw[nlo:nhi] != self.WOb[nlo:nhi]
            if moved.any():
                mrows = np.nonzero(moved)[0] + nlo
                fstarts = aux.fanin_indptr[mrows]
                fcnt = aux.fanin_indptr[mrows + 1] - fstarts
                fans = _take_ranges(aux.fanin_rows, fstarts, fcnt)
                bwd_dirty[aux.entry_of_row[fans]] = True

        # -- extract patches (changed-vs-base only), restore work arrays
        stem_pre: Dict[str, float] = {}
        stem_post: Dict[str, float] = {}
        branch_pre: Dict[tuple, float] = {}
        branch_post: Dict[tuple, float] = {}
        wire_obs: Dict[str, float] = {}
        branch_obs: Dict[tuple, float] = {}
        stem_post_obs: Dict[str, float] = {}
        recomputed = 0
        for j in f_touched:
            entry = levels[j]
            nlo, nhi = entry.node_lo, entry.node_hi
            recomputed += nhi - nlo
            for off in np.nonzero(Qw[nlo:nhi] != self.Qb[nlo:nhi])[0]:
                r = nlo + off
                stem_pre[names[r]] = float(Qw[r])
            for off in np.nonzero(Sw[nlo:nhi] != self.Sb[nlo:nhi])[0]:
                r = nlo + off
                stem_post[names[r]] = float(Sw[r])
            elo, ehi = entry.edge_lo, entry.edge_hi
            if ehi > elo:
                drv = edge_driver_rows[elo:ehi]
                for off in np.nonzero(Sw[drv] != self.Sb[drv])[0]:
                    branch_pre[edge_keys[elo + off]] = float(Sw[drv[off]])
                for off in np.nonzero(
                    Tw[elo:ehi] != self.Tb[elo:ehi]
                )[0]:
                    e = elo + off
                    branch_post[edge_keys[e]] = float(Tw[e])
            Qw[nlo:nhi] = self.Qb[nlo:nhi]
            Sw[nlo:nhi] = self.Sb[nlo:nhi]
            Tw[elo:ehi] = self.Tb[elo:ehi]
        for j in b_touched:
            entry = levels[j]
            nlo, nhi = entry.node_lo, entry.node_hi
            recomputed += nhi - nlo
            for off in np.nonzero(WOw[nlo:nhi] != self.WOb[nlo:nhi])[0]:
                r = nlo + off
                wire_obs[names[r]] = float(WOw[r])
            for off in np.nonzero(POw[nlo:nhi] != self.POb[nlo:nhi])[0]:
                r = nlo + off
                stem_post_obs[names[r]] = float(POw[r])
            elo, ehi = entry.edge_lo, entry.edge_hi
            if ehi > elo:
                for off in np.nonzero(
                    OBw[elo:ehi] != self.OBb[elo:ehi]
                )[0]:
                    e = elo + off
                    branch_obs[edge_keys[e]] = float(OBw[e])
            WOw[nlo:nhi] = self.WOb[nlo:nhi]
            POw[nlo:nhi] = self.POb[nlo:nhi]
            OBw[elo:ehi] = self.OBb[elo:ehi]
        if dirty_rows:
            dr = np.asarray(dirty_rows, dtype=np.intp)
            self.Fsw[dr] = self.Fsb[dr]
            self.Zmsw[dr] = self.Zmsb[dr]
        if dirty_edges:
            de = np.asarray(dirty_edges, dtype=np.intp)
            self.Few[de] = self.Feb[de]
            self.Zmew[de] = self.Zmeb[de]
        patches = (
            stem_pre, stem_post, branch_pre, branch_post,
            wire_obs, branch_obs, stem_post_obs,
        )
        return patches, recomputed


# ---------------------------------------------------------------------------
# Plan registry (mirrors the compiled-kernel registry)
# ---------------------------------------------------------------------------

_PLANS: "OrderedDict[str, CircuitPlan]" = OrderedDict()
_PLANS_CAP = 128
_PLANS_LOCK = threading.RLock()


def get_plan(circuit: Circuit) -> CircuitPlan:
    """The (shared) numpy plan for ``circuit``'s structure.

    Keyed by structural hash — structurally identical circuits share one
    plan, and a netlist rewrite can never be served stale index arrays.
    """
    _require_numpy()
    key = circuit.structural_hash()
    with _PLANS_LOCK:
        plan = _PLANS.get(key)
        if plan is not None:
            _PLANS.move_to_end(key)
            obs.count("npsim.plan_cache_hits")
            return plan
    # Build outside the registry lock (plans for different circuits must
    # not serialize on each other); a losing race just discards its copy.
    plan = CircuitPlan(circuit)
    with _PLANS_LOCK:
        existing = _PLANS.get(key)
        if existing is not None:
            return existing
        _PLANS[key] = plan
        while len(_PLANS) > _PLANS_CAP:
            _PLANS.popitem(last=False)
    return plan


def clear_plans() -> None:
    """Evict every cached plan (tests / memory pressure)."""
    with _PLANS_LOCK:
        _PLANS.clear()


def plan_registry_size() -> int:
    """Number of circuit structures currently planned."""
    with _PLANS_LOCK:
        return len(_PLANS)
