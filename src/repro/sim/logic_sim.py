"""Pattern-parallel logic simulation of combinational netlists.

:class:`LogicSimulator` levelizes a circuit once and then evaluates any
number of stimulus sets; each signal's values under every pattern live in a
single packed integer word (see :mod:`repro.sim.bitops`).  The simulator
also supports *forced values* — overriding a node or a specific fan-in
connection with an arbitrary word — which is the primitive both fault
injection and control-point what-if analysis are built on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..circuit.gates import evaluate_gate
from ..circuit.netlist import Circuit
from ..errors import SimulationError
from .backend import get_backend
from .bitops import ones_mask
from .compile import resolve_kernel

__all__ = ["LogicSimulator", "simulate", "signal_probabilities_by_simulation"]

#: A connection override key: (sink_gate, pin_index).
Connection = Tuple[str, int]


class LogicSimulator:
    """Levelized pattern-parallel simulator bound to one circuit.

    The circuit must not be structurally modified while the simulator is in
    use (create a new simulator after netlist rewrites); any mutation bumps
    the circuit's structural revision and subsequent :meth:`run` calls raise
    :class:`~repro.errors.SimulationError` instead of returning stale
    values.

    ``kernel`` picks the simulation backend for force-free runs (see
    :mod:`repro.sim.backend`): ``"compiled"`` (the default) uses the
    per-circuit compiled kernel, ``"numpy"`` the word-parallel array
    engine, and ``"interp"`` the interpreted gate walk, which remains the
    ground-truth arbiter.  Forced-value runs always interpret.
    """

    def __init__(self, circuit: Circuit, kernel: Optional[str] = None) -> None:
        circuit.validate()
        self.circuit = circuit
        self.kernel = resolve_kernel(kernel)
        self._revision = circuit.revision
        self._order: List[str] = [
            name for name in circuit.topological_order() if circuit.node(name).is_gate
        ]
        self._inputs = circuit.inputs
        self._backend = get_backend(self.kernel)
        self._runner = None
        self._have_runner = False

    def _check_revision(self) -> None:
        if self.circuit.revision != self._revision:
            raise SimulationError(
                f"circuit {self.circuit.name!r} was structurally modified "
                f"after this simulator was built (revision "
                f"{self._revision} -> {self.circuit.revision}); "
                "create a new simulator"
            )

    def run(
        self,
        stimulus: Mapping[str, int],
        n_patterns: int,
        node_forces: Optional[Mapping[str, int]] = None,
        connection_forces: Optional[Mapping[Connection, int]] = None,
    ) -> Mapping[str, int]:
        """Simulate and return the packed value word of every node.

        The result maps node name → packed word.  The numpy backend
        returns a :class:`~repro.sim.npsim.PackedState` — a mapping that
        compares equal to the plain dict of the other backends while
        keeping the packed arrays available to the fault simulator.

        Parameters
        ----------
        stimulus:
            Map primary-input name → packed word.  Missing inputs default
            to constant 0.
        n_patterns:
            Number of valid pattern bits.
        node_forces:
            Map node name → packed word; the node's computed value is
            replaced by the word (stuck-at faults use a constant word).
        connection_forces:
            Map ``(sink, pin)`` → packed word; only that fan-in connection
            sees the forced word (fanout-branch faults).
        """
        self._check_revision()
        if not node_forces and not connection_forces:
            if not self._have_runner:
                self._runner = self._backend.logic_runner(self.circuit)
                self._have_runner = True
            if self._runner is not None:
                return self._runner(stimulus, n_patterns)
        mask = ones_mask(n_patterns)
        values: Dict[str, int] = {}
        node_forces = node_forces or {}
        connection_forces = connection_forces or {}
        for pi in self._inputs:
            word = stimulus.get(pi, 0) & mask
            if pi in node_forces:
                word = node_forces[pi] & mask
            values[pi] = word
        for name in self._order:
            node = self.circuit.node(name)
            if connection_forces:
                fanin_words = [
                    connection_forces.get((name, pin), values[fi]) & mask
                    for pin, fi in enumerate(node.fanins)
                ]
            else:
                fanin_words = [values[fi] for fi in node.fanins]
            word = evaluate_gate(node.gate_type, fanin_words, mask)
            if name in node_forces:
                word = node_forces[name] & mask
            values[name] = word
        return values

    def run_outputs(
        self,
        stimulus: Mapping[str, int],
        n_patterns: int,
        **kwargs,
    ) -> Dict[str, int]:
        """Like :meth:`run` but return only the primary-output words."""
        values = self.run(stimulus, n_patterns, **kwargs)
        return {po: values[po] for po in self.circuit.outputs}


def simulate(
    circuit: Circuit, stimulus: Mapping[str, int], n_patterns: int
) -> Dict[str, int]:
    """One-shot convenience wrapper around :class:`LogicSimulator`."""
    return LogicSimulator(circuit).run(stimulus, n_patterns)


def signal_probabilities_by_simulation(
    circuit: Circuit,
    stimulus: Mapping[str, int],
    n_patterns: int,
) -> Dict[str, float]:
    """Estimate ``P[node = 1]`` for every node by explicit simulation.

    This is the Monte-Carlo ground truth the analytical COP measures are
    validated against in the test suite.
    """
    values = simulate(circuit, stimulus, n_patterns)
    return {name: word.bit_count() / n_patterns for name, word in values.items()}
