"""Process-parallel fault simulation over partitioned fault lists.

The fault simulator's work is embarrassingly parallel across faults: each
fault's propagation depends only on the shared good-circuit words, never on
another fault's result.  :func:`run_parallel` exploits that by splitting
the collapsed fault list into contiguous chunks, fan-ing the chunks out to
a :class:`~concurrent.futures.ProcessPoolExecutor`, and merging the
per-fault results back **in input order** — the merged
:class:`~repro.sim.fault_sim.FaultSimResult` is bit-identical to a serial
run (the equivalence tests assert this down to the first-detect indices),
so callers never observe the parallelism.

Design notes:

* workers are primed once (per pool) with the circuit, the stimulus, and —
  in exact mode — the parent's good-circuit words, so each worker replays
  the same fault-free state instead of re-deriving it per chunk; under the
  numpy kernel the words ship as the parent's packed ``(n_rows, n_words)``
  matrices and each contiguous fault chunk becomes a B-axis shard of the
  batched fault cube, propagated straight off the shared arrays;
* cooperative budgets are honored *inside* workers: each chunk gets a
  fresh-clock budget whose ``max_patterns`` share is proportional to its
  chunk size.  :class:`~repro.errors.BudgetExceededError` does not survive
  pickling (it has a custom constructor), so workers return a sentinel
  payload the parent re-raises as the real exception, first chunk first —
  deterministic regardless of which worker finished when;
* the fan-out is hardened against misbehaving workers: every chunk is
  submitted individually, validated on return, retried with capped
  exponential backoff on crash/corruption/timeout, re-dispatched after
  one pool respawn on :class:`BrokenProcessPool`, and finally computed
  serially in the parent (``parallel.degraded``) — the merged result is
  the same bits no matter which of those paths each chunk took;
* anything that prevents the pool from working (unpicklable circuit, a
  sandbox that forbids ``fork``, a broken pool) degrades to the serial
  path with the caller's original budget, never to an error;
* workers are not black boxes: every chunk captures the counter deltas
  its simulators emitted (through a chunk-local recorder) and ships them
  back beside the results, tagged with the worker pid and the parent's
  run id; the parent merges exactly one telemetry record per chunk into
  its registry under the ``worker.`` namespace and into its trace as
  ``parallel.chunk_telemetry`` / ``parallel.worker_summary`` events —
  retries, degradation, and kernel rebuilds inside workers are visible
  with per-worker attribution and no double counting;
* all of that machinery is testable deterministically by passing a
  seeded :class:`~repro.resilience.chaos.ChaosSpec` (``chaos=``), which
  makes workers crash / hang / corrupt their payloads on purpose.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import obs
from ..errors import BudgetExceededError, SimulationError
from ..resilience import Budget
from ..resilience.chaos import ChaosSpec
from ..resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from . import npsim
from .backend import get_backend
from .compile import resolve_kernel
from .fault_sim import FaultSimResult, FaultSimulator
from .faults import Fault

__all__ = ["run_parallel", "split_chunks"]

#: Below this many faults per requested job the pool overhead cannot pay
#: for itself; the call silently runs serially.
MIN_FAULTS_PER_JOB = 4

#: Attempts per chunk (first try + retries) before the parent computes
#: the chunk itself.
DEFAULT_MAX_ATTEMPTS = DEFAULT_RETRY_POLICY.max_attempts

# ---------------------------------------------------------------------------
# Worker side.  State is primed once per worker process via the pool
# initializer; chunks then only carry the fault lists.
# ---------------------------------------------------------------------------

_WORKER_STATE: Optional[Dict[str, object]] = None


def _init_worker(
    circuit,
    stimulus: Mapping[str, int],
    n_patterns: int,
    mode: str,
    block: int,
    good_values: Optional[Mapping[str, int]],
    good_blocks: Optional[List[Tuple[int, Mapping[str, int]]]],
    kernel: str = "interp",
    kernel_sources: Optional[Dict[str, str]] = None,
    kernel_cone_meta: Optional[Dict[str, int]] = None,
    chaos: Optional[ChaosSpec] = None,
    run_id: Optional[str] = None,
    good_matrix=None,
    good_block_matrices: Optional[List[Tuple[int, object]]] = None,
) -> None:
    """Prime one worker process with the shared simulation state.

    ``kernel_sources`` carries the parent's already-generated kernel
    *source strings* (compiled code objects don't pickle); the worker
    seeds its registry with them and re-``exec``s each kernel lazily on
    first use, so chunk work never re-derives codegen the parent already
    paid for.  ``run_id`` is the parent recorder's run identifier — it
    rides back in every chunk's telemetry so worker-side activity can be
    attributed to the parent trace.

    ``good_matrix`` / ``good_block_matrices`` are the numpy kernel's
    cube-shard priming: the parent's packed good matrix (its
    ``(n_rows, n_words)`` uint64 array — plans themselves hold locks and
    don't pickle) or its per-dropping-block equivalents.  The worker
    wraps them in :class:`~repro.sim.npsim.PackedState` against its
    locally-rebuilt plan, so every fault chunk — one B-axis shard of the
    batched fault cube — propagates straight off the shared arrays with
    no per-worker int-word repacking.
    """
    global _WORKER_STATE
    # The parent's recorder (file handles, span stacks) must not be
    # inherited into forked workers — concurrent writes would interleave.
    obs.set_recorder(None)
    # Backend-specific priming: the compiled backend seeds its registry
    # from the shipped sources, the numpy backend rebuilds its plan
    # locally, interp needs nothing.
    get_backend(kernel).prime_worker(circuit, kernel_sources, kernel_cone_meta)
    if good_matrix is not None:
        plan = npsim.get_plan(circuit)
        good_values = npsim.PackedState(plan, good_matrix, n_patterns)
    if good_block_matrices is not None:
        plan = npsim.get_plan(circuit)
        good_blocks = [
            (blk_n, npsim.PackedState(plan, matrix, blk_n))
            for blk_n, matrix in good_block_matrices
        ]
    _WORKER_STATE = {
        "sim": FaultSimulator(circuit, kernel=kernel),
        "stimulus": stimulus,
        "n_patterns": n_patterns,
        "mode": mode,
        "block": block,
        "good_values": good_values,
        "good_blocks": good_blocks,
        "chaos": chaos,
        "run_id": run_id,
    }


def _simulate_chunk(
    task: Tuple[
        Sequence[Fault], Optional[Dict[str, Optional[float]]], int, int
    ],
):
    """Simulate one fault chunk; returns a picklable result payload.

    ``task`` is ``(chunk, budget_spec, chunk_index, attempt)`` — the
    index/attempt pair feeds the (optional) chaos hook and makes retried
    submissions distinguishable in worker-side decisions.

    Success payload: ``("ok", words, first_detects, gate_evals, telem)``
    with the lists aligned to the chunk's fault order and ``telem`` the
    chunk's telemetry summary (pid, run id, attempt, seconds, and the
    counter deltas the simulators emitted while computing this chunk —
    captured through a chunk-local recorder, so the numbers are exact
    deltas no matter how many chunks a worker has already served).
    Budget exhaustion payload: ``("budget", resource, limit, spent,
    where)`` — the parent re-raises, because
    :class:`BudgetExceededError` itself cannot round-trip pickle.
    """
    chunk, budget_spec, chunk_index, attempt = task
    state = _WORKER_STATE
    assert state is not None, "worker used before initialization"
    sim: FaultSimulator = state["sim"]  # type: ignore[assignment]
    chaos: Optional[ChaosSpec] = state.get("chaos")  # type: ignore[assignment]
    action = chaos.action(chunk_index, attempt) if chaos is not None else None
    if action == "crash":
        os._exit(13)  # a hard worker death, not an exception
    if action == "spurious":
        raise RuntimeError(
            f"chaos: spurious exception in chunk {chunk_index} "
            f"attempt {attempt}"
        )
    if action == "hang":
        time.sleep(chaos.hang_seconds)
    budget = None
    if budget_spec is not None:
        budget = Budget(
            wall_ms=budget_spec.get("wall_ms"),
            max_patterns=budget_spec.get("max_patterns"),
        )
    evals_before = sim.gate_evals
    capture = obs.RunRecorder(None)
    previous = obs.set_recorder(capture)
    start = perf_counter()
    try:
        try:
            if state["mode"] == "coverage":
                result = sim.run_coverage(
                    state["stimulus"],  # type: ignore[arg-type]
                    state["n_patterns"],  # type: ignore[arg-type]
                    faults=chunk,
                    budget=budget,
                    block=state["block"],  # type: ignore[arg-type]
                    good_blocks=state["good_blocks"],  # type: ignore[arg-type]
                )
            else:
                result = sim.run(
                    state["stimulus"],  # type: ignore[arg-type]
                    state["n_patterns"],  # type: ignore[arg-type]
                    faults=chunk,
                    budget=budget,
                    good_values=state["good_values"],  # type: ignore[arg-type]
                )
        except BudgetExceededError as exc:
            return ("budget", exc.resource, exc.limit, exc.spent, exc.where)
    finally:
        obs.set_recorder(previous)
    telem = {
        "pid": os.getpid(),
        "run_id": state.get("run_id"),
        "attempt": attempt,
        "in_parent": False,
        "seconds": round(perf_counter() - start, 6),
        "counters": capture.metrics.snapshot()["counters"],
    }
    words = [result.detection_word[f] for f in chunk]
    firsts = [result.first_detect[f] for f in chunk]
    if action == "corrupt":
        # A torn payload: one fault's result silently missing.  The
        # parent's shape validation must reject this and retry.
        words = words[:-1]
    return ("ok", words, firsts, sim.gate_evals - evals_before, telem)


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------


def split_chunks(items: Sequence, n: int) -> List[List]:
    """Split ``items`` into ``n`` contiguous, near-equal chunks.

    Contiguity is what makes the parallel merge deterministic: chunk
    boundaries depend only on ``(len(items), n)``, never on scheduling.
    Empty chunks are omitted.
    """
    if n <= 0:
        raise ValueError("chunk count must be positive")
    out: List[List] = []
    base, extra = divmod(len(items), n)
    start = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        if size:
            out.append(list(items[start : start + size]))
        start += size
    return out


def _chunk_budget_specs(
    budget: Optional[Budget], chunks: Sequence[Sequence[Fault]]
) -> List[Optional[Dict[str, Optional[float]]]]:
    """Per-chunk budget specs: fresh clocks, proportional pattern shares."""
    if budget is None:
        return [None] * len(chunks)
    total = sum(len(c) for c in chunks)
    max_patterns = budget.limits["patterns"]
    specs: List[Optional[Dict[str, Optional[float]]]] = []
    for chunk in chunks:
        share: Optional[int] = None
        if max_patterns is not None:
            share = (max_patterns * len(chunk)) // max(total, 1)
        specs.append({"wall_ms": budget.wall_ms, "max_patterns": share})
    return specs


def _fan_out(
    chunks: Sequence[Sequence[Fault]],
    specs: Sequence[Optional[Dict[str, Optional[float]]]],
    max_workers: int,
    initargs: tuple,
    chunk_timeout: Optional[float],
    retry_policy: RetryPolicy,
    serial_chunk,
) -> List[tuple]:
    """Submit every chunk, survive misbehaving workers, return payloads.

    One future per chunk (not ``pool.map``): each chunk is individually
    validated, retried with capped exponential backoff, re-dispatched
    after a single pool respawn on :class:`BrokenProcessPool`, deadline-
    enforced when ``chunk_timeout`` is set, and finally handed to
    ``serial_chunk`` (in-parent computation) when its attempts run out.
    The returned list is indexed by chunk — merge order, and therefore
    the result, is independent of scheduling, retries, and degradation.
    """
    n = len(chunks)
    payloads: List[Optional[tuple]] = [None] * n
    attempts = [0] * n
    respawned = False

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=initargs,
        )

    pool = make_pool()
    pending: Dict[object, Tuple[int, int]] = {}  # future -> (chunk, attempt)
    deadlines: Dict[object, float] = {}
    current: Dict[int, object] = {}  # chunk -> its latest future

    def submit(idx: int) -> None:
        fut = pool.submit(
            _simulate_chunk, (chunks[idx], specs[idx], idx, attempts[idx])
        )
        pending[fut] = (idx, attempts[idx])
        if chunk_timeout is not None:
            deadlines[fut] = time.monotonic() + chunk_timeout
        current[idx] = fut

    def degrade(idx: int) -> None:
        obs.count("parallel.degraded")
        obs.event(
            "parallel.chunk_degraded", chunk=idx, attempts=attempts[idx]
        )
        payloads[idx] = serial_chunk(idx)
        current.pop(idx, None)

    def retry(idx: int, reason: str) -> None:
        attempts[idx] += 1
        if not retry_policy.should_retry(attempts[idx]):
            degrade(idx)
            return
        obs.count("parallel.retries")
        obs.event(
            "parallel.chunk_retry",
            chunk=idx,
            attempt=attempts[idx],
            reason=reason,
        )
        retry_policy.sleep(attempts[idx], key=str(idx))
        submit(idx)

    def handle_broken() -> None:
        nonlocal pool, respawned
        pending.clear()
        deadlines.clear()
        current.clear()
        try:
            pool.shutdown(wait=False)
        except Exception:
            pass
        unresolved = [i for i in range(n) if payloads[i] is None]
        if respawned:
            # Second break: stop trusting pools, finish in the parent.
            obs.event(
                "parallel.pool_broken_again", unresolved=len(unresolved)
            )
            for idx in unresolved:
                degrade(idx)
            return
        respawned = True
        obs.event("parallel.pool_respawn", unresolved=len(unresolved))
        pool = make_pool()
        # retry() (not submit()) so the lost attempt is counted — a
        # deterministic first-attempt chaos crash must not be able to
        # break the respawned pool a second time.
        for idx in unresolved:
            retry(idx, "pool_broken")

    try:
        try:
            for idx in range(n):
                submit(idx)
        except BrokenProcessPool:
            handle_broken()
        while any(p is None for p in payloads):
            if not pending:
                for idx in range(n):
                    if payloads[idx] is None:
                        degrade(idx)
                break
            try:
                timeout = None
                if deadlines:
                    timeout = max(
                        0.0, min(deadlines.values()) - time.monotonic()
                    )
                done, _not_done = wait(
                    list(pending), timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
                for fut in done:
                    idx, _attempt = pending.pop(fut)
                    deadlines.pop(fut, None)
                    is_current = current.get(idx) is fut
                    if is_current:
                        current.pop(idx, None)
                    exc = fut.exception()
                    if exc is not None:
                        if isinstance(exc, BrokenProcessPool):
                            raise exc
                        if payloads[idx] is None and is_current:
                            retry(idx, type(exc).__name__)
                        continue
                    payload = fut.result()
                    if payloads[idx] is not None:
                        continue  # a retry already resolved this chunk
                    if _valid_payload(payload, chunks[idx]):
                        # A late (stale) but valid result is as good as a
                        # fresh one — accept it.
                        payloads[idx] = payload
                    elif is_current:
                        retry(idx, "corrupt_payload")
                # Deadline scan: the hung attempt stays in ``pending`` (it
                # cannot be cancelled once running) but loses its claim —
                # its late result is only used if the retry hasn't landed.
                if deadlines:
                    now = time.monotonic()
                    for fut in [
                        f for f, d in deadlines.items() if d <= now
                    ]:
                        deadlines.pop(fut, None)
                        idx, attempt = pending[fut]
                        if payloads[idx] is not None:
                            continue
                        if current.get(idx) is not fut:
                            continue
                        obs.event(
                            "parallel.chunk_timeout",
                            chunk=idx,
                            attempt=attempt,
                        )
                        retry(idx, "timeout")
            except BrokenProcessPool:
                handle_broken()
        # Belt and braces: the merge zips payloads against chunks, so a
        # hole here would silently misalign results.  Fill any remaining
        # gap serially instead.
        for idx in range(n):
            if payloads[idx] is None:
                degrade(idx)
        return payloads  # type: ignore[return-value]
    finally:
        # Never block the caller on hung chaos workers; queued stale
        # tasks are dropped, running ones finish into the void.
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass


def _valid_payload(payload, chunk: Sequence[Fault]) -> bool:
    """Shape-validate a worker payload before trusting it.

    A corrupted payload (chaos, a worker dying mid-pickle, a codec bug)
    must never silently drop faults from the merged result.
    """
    if not isinstance(payload, tuple) or not payload:
        return False
    if payload[0] == "budget":
        return len(payload) == 5
    if payload[0] == "ok":
        return (
            len(payload) == 5
            and isinstance(payload[1], list)
            and isinstance(payload[2], list)
            and len(payload[1]) == len(chunk)
            and len(payload[2]) == len(chunk)
            and (payload[4] is None or isinstance(payload[4], dict))
        )
    return False


def _merge_telemetry(
    telemetries: Sequence[Tuple[int, Dict[str, object]]],
    run_id: Optional[str],
) -> None:
    """Fold accepted chunks' telemetry into the parent registry + trace.

    Exactly-once by construction: the fan-out resolves one payload per
    chunk (retried attempts' payloads are discarded before this point),
    and every worker-side counter is namespaced under ``worker.`` so the
    merge can never collide with the parent's own counts of the same
    events.  Each chunk also leaves a ``parallel.chunk_telemetry`` trace
    event attributing the work to the process that did it, and each
    reporting process a ``parallel.worker_summary`` rollup.
    """
    if not telemetries or not obs.enabled():
        return
    totals: Dict[str, float] = {}
    by_pid: Dict[int, Dict[str, object]] = {}
    for idx, telem in telemetries:
        counters = telem.get("counters") or {}
        obs.event(
            "parallel.chunk_telemetry",
            chunk=idx,
            pid=telem.get("pid"),
            run_id=telem.get("run_id") or run_id,
            attempt=telem.get("attempt"),
            in_parent=bool(telem.get("in_parent")),
            seconds=telem.get("seconds"),
            counters=counters,
        )
        pid = telem.get("pid")
        if isinstance(pid, int):
            summary = by_pid.setdefault(
                pid,
                {
                    "chunks": 0,
                    "seconds": 0.0,
                    "in_parent": bool(telem.get("in_parent")),
                    "counters": {},
                },
            )
            summary["chunks"] += 1  # type: ignore[operator]
            summary["seconds"] += float(telem.get("seconds") or 0.0)  # type: ignore[operator]
            per_pid: Dict[str, float] = summary["counters"]  # type: ignore[assignment]
            for name, value in counters.items():
                if isinstance(value, (int, float)):
                    per_pid[name] = per_pid.get(name, 0.0) + value
        for name, value in counters.items():
            if isinstance(value, (int, float)):
                totals[name] = totals.get(name, 0.0) + value
    for name, value in sorted(totals.items()):
        obs.count(f"worker.{name}", value)
    for pid, summary in sorted(by_pid.items()):
        obs.event(
            "parallel.worker_summary",
            pid=pid,
            run_id=run_id,
            chunks=summary["chunks"],
            seconds=round(float(summary["seconds"]), 6),  # type: ignore[arg-type]
            in_parent=summary["in_parent"],
            counters=summary["counters"],
        )
    obs.count("parallel.chunks_merged", len(telemetries))
    obs.gauge(
        "parallel.workers_reporting",
        sum(1 for s in by_pid.values() if not s["in_parent"]),
    )


def run_parallel(
    circuit,
    stimulus: Mapping[str, int],
    n_patterns: int,
    faults: Optional[Sequence[Fault]] = None,
    collapse: bool = True,
    jobs: int = 1,
    mode: str = "exact",
    block: int = 64,
    budget: Optional[Budget] = None,
    kernel: Optional[str] = None,
    chaos: Optional[ChaosSpec] = None,
    chunk_timeout: Optional[float] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    retry_policy: Optional[RetryPolicy] = None,
) -> FaultSimResult:
    """Fault-simulate with the fault list fanned out over ``jobs`` processes.

    Parameters
    ----------
    circuit, stimulus, n_patterns, faults, collapse:
        As for :meth:`~repro.sim.fault_sim.FaultSimulator.run`.
    jobs:
        Worker process count.  ``jobs <= 1`` (or a fault list too small to
        amortize the pool) runs serially in-process; the result is
        identical either way.
    mode:
        ``"exact"`` (full detection words, :meth:`run`) or ``"coverage"``
        (fault dropping, :meth:`run_coverage`).
    block:
        Initial dropping-block size for ``mode="coverage"``.
    budget:
        Optional cooperative budget.  In the parallel path each chunk is
        enforced inside its worker with a fresh clock and a proportional
        ``max_patterns`` share; exhaustion in any chunk raises
        :class:`BudgetExceededError` in the parent (first chunk in fault
        order wins, for determinism).
    kernel:
        ``"compiled"``, ``"numpy"`` or ``"interp"``; forwarded to every
        worker's simulator.  Compiled workers receive the parent's
        generated kernel sources and rebuild the code objects on first
        use; numpy workers receive the parent's packed good matrices
        (cube-shard priming — each fault chunk is a B-axis shard of the
        batched fault cube over the shared arrays).
    chaos:
        Optional deterministic fault-injection plan
        (:class:`~repro.resilience.chaos.ChaosSpec`) — test-only; makes
        workers crash / hang / corrupt payloads on purpose to exercise
        the hardening below.
    chunk_timeout:
        Per-chunk deadline in seconds.  A chunk still unfinished past its
        deadline is re-dispatched (the hung attempt's late result is used
        only if the retry has not landed first).  ``None`` disables
        deadline enforcement.
    max_attempts:
        Worker attempts per chunk (first try + retries, with capped
        exponential backoff) before the parent computes the chunk
        serially itself (``parallel.degraded``).
    retry_policy:
        Full backoff schedule (:class:`~repro.resilience.retry.
        RetryPolicy`).  Defaults to the shared
        :data:`~repro.resilience.retry.DEFAULT_RETRY_POLICY` with
        ``max_attempts`` applied; passing both keeps the policy's
        schedule but ``retry_policy.max_attempts`` wins.

    Failure handling never changes the result, only the wall clock:
    crashed/hung/corrupt chunks are retried (``parallel.retries``), one
    :class:`BrokenProcessPool` respawns the pool and re-dispatches every
    unresolved chunk (``parallel.pool_respawn``), and a chunk that
    exhausts its attempts — or a second pool break — degrades to an
    in-parent serial computation (``parallel.degraded``).
    """
    if mode not in ("exact", "coverage"):
        raise SimulationError(f"unknown parallel fault-sim mode {mode!r}")
    if retry_policy is None:
        retry_policy = DEFAULT_RETRY_POLICY.replaced(
            max_attempts=max_attempts
        )
    kernel = resolve_kernel(kernel)
    sim = FaultSimulator(circuit, kernel=kernel)
    faults = sim._resolve_faults(faults, collapse)

    def serial() -> FaultSimResult:
        if mode == "coverage":
            return sim.run_coverage(
                stimulus, n_patterns, faults=faults, budget=budget, block=block
            )
        return sim.run(stimulus, n_patterns, faults=faults, budget=budget)

    if jobs <= 1 or len(faults) < MIN_FAULTS_PER_JOB * jobs:
        return serial()

    chunks = split_chunks(faults, jobs)
    specs = _chunk_budget_specs(budget, chunks)
    # The good machine is simulated once, in the parent; workers replay
    # the shared words (free under fork, one pickle under spawn).  The
    # numpy kernel ships its packed matrices instead of int-word dicts:
    # each worker wraps the raw arrays against its own plan (see
    # ``_init_worker``) and its fault chunks run as B-axis shards of the
    # batched fault cube, skipping the per-worker repacking the dict
    # round-trip used to cost.
    good_values = None
    good_blocks = None
    good_matrix = None
    good_block_matrices = None
    ship_good_values = None
    ship_good_blocks = None
    if mode == "exact":
        good = sim._logic.run(stimulus, n_patterns)
        if kernel == "numpy" and isinstance(good, npsim.PackedState):
            good_values = good
            good_matrix = good.values
        else:
            good_values = ship_good_values = dict(good)
    else:
        blocks = list(sim.coverage_blocks(stimulus, n_patterns, block))
        if kernel == "numpy" and all(
            isinstance(gv, npsim.PackedState) for _n, gv in blocks
        ):
            good_blocks = blocks
            good_block_matrices = [
                (blk_n, gv.values) for blk_n, gv in blocks
            ]
        else:
            good_blocks = ship_good_blocks = [
                (blk_n, dict(gv)) for blk_n, gv in blocks
            ]
    kernel_sources, kernel_cone_meta = get_backend(kernel).worker_payload(
        circuit
    )
    parent_recorder = obs.get_recorder()
    run_id = parent_recorder.run_id if parent_recorder is not None else None
    with obs.span(
        "fault_sim.parallel",
        circuit=circuit.name,
        n_patterns=n_patterns,
        n_faults=len(faults),
        jobs=jobs,
        mode=mode,
    ) as sp:
        start = perf_counter()

        def serial_chunk(idx: int):
            """Compute one chunk in the parent (last-resort degradation).

            Counter deltas are captured through a chunk-local recorder —
            exactly as a worker would — so a degraded chunk's telemetry
            is merged once, through the same path, instead of leaking
            unattributed into the parent registry.  Spans the simulators
            open during this window go to the capture recorder (and are
            dropped); the chunk's telemetry event is the record of it.
            """
            spec = specs[idx]
            chunk_budget = None
            if spec is not None:
                chunk_budget = Budget(
                    wall_ms=spec.get("wall_ms"),
                    max_patterns=spec.get("max_patterns"),
                )
            evals_before = sim.gate_evals
            capture = obs.RunRecorder(None)
            previous = obs.set_recorder(capture)
            chunk_start = perf_counter()
            try:
                try:
                    if mode == "coverage":
                        res = sim.run_coverage(
                            stimulus,
                            n_patterns,
                            faults=chunks[idx],
                            budget=chunk_budget,
                            block=block,
                            good_blocks=good_blocks,
                        )
                    else:
                        res = sim.run(
                            stimulus,
                            n_patterns,
                            faults=chunks[idx],
                            budget=chunk_budget,
                            good_values=good_values,
                        )
                except BudgetExceededError as exc:
                    return (
                        "budget", exc.resource, exc.limit, exc.spent, exc.where
                    )
            finally:
                obs.set_recorder(previous)
            telem = {
                "pid": os.getpid(),
                "run_id": run_id,
                "attempt": None,
                "in_parent": True,
                "seconds": round(perf_counter() - chunk_start, 6),
                "counters": capture.metrics.snapshot()["counters"],
            }
            return (
                "ok",
                [res.detection_word[f] for f in chunks[idx]],
                [res.first_detect[f] for f in chunks[idx]],
                sim.gate_evals - evals_before,
                telem,
            )

        try:
            # ``jobs`` fixes the chunking (and therefore the merge order and
            # budget shares); the worker count is additionally capped at the
            # machine's usable cores — oversubscribing only adds fork and
            # scheduling overhead, never throughput.
            try:
                usable = len(os.sched_getaffinity(0))
            except AttributeError:  # platforms without affinity support
                usable = os.cpu_count() or 1
            payloads = _fan_out(
                chunks=chunks,
                specs=specs,
                max_workers=min(len(chunks), max(usable, 1)),
                initargs=(
                    circuit,
                    stimulus,
                    n_patterns,
                    mode,
                    block,
                    ship_good_values,
                    ship_good_blocks,
                    kernel,
                    kernel_sources,
                    kernel_cone_meta,
                    chaos,
                    run_id,
                    good_matrix,
                    good_block_matrices,
                ),
                chunk_timeout=chunk_timeout,
                retry_policy=retry_policy,
                serial_chunk=serial_chunk,
            )
        except BudgetExceededError:
            raise
        except Exception as exc:  # pool unusable: degrade, don't fail
            obs.event(
                "fault_sim.parallel_fallback",
                error=type(exc).__name__,
                detail=str(exc)[:200],
            )
            return serial()

        result = FaultSimResult(
            n_patterns=n_patterns, coverage_only=(mode == "coverage")
        )
        detected = 0
        worker_evals = 0
        telemetries: List[Tuple[int, Dict[str, object]]] = []
        for idx, (chunk, payload) in enumerate(zip(chunks, payloads)):
            if payload[0] == "budget":
                _tag, resource, limit, spent, where = payload
                raise BudgetExceededError(
                    resource, limit, spent, where=where or "fault_sim.parallel"
                )
            _tag, words, firsts, evals, telem = payload
            worker_evals += evals
            if telem:
                telemetries.append((idx, telem))
            for fault, word, first in zip(chunk, words, firsts):
                result.detection_word[fault] = word
                result.first_detect[fault] = first
                if word:
                    detected += 1
        result._n_detected = detected
        _merge_telemetry(telemetries, run_id)
        seconds = perf_counter() - start
        sp.set(detected=detected, gate_evals=worker_evals, seconds=seconds)
    obs.count("fault_sim.runs")
    obs.count("fault_sim.parallel_runs")
    obs.count("fault_sim.patterns", n_patterns)
    obs.count("fault_sim.faults", len(faults))
    obs.count("fault_sim.dropped", detected)
    obs.count("fault_sim.undetected", len(faults) - detected)
    obs.count("fault_sim.gate_evals", worker_evals)
    if seconds > 0.0:
        obs.gauge("fault_sim.gate_evals_per_sec", worker_evals / seconds)
    obs.observe("fault_sim.run_seconds", seconds)
    return result
