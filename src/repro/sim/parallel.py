"""Process-parallel fault simulation over partitioned fault lists.

The fault simulator's work is embarrassingly parallel across faults: each
fault's propagation depends only on the shared good-circuit words, never on
another fault's result.  :func:`run_parallel` exploits that by splitting
the collapsed fault list into contiguous chunks, fan-ing the chunks out to
a :class:`~concurrent.futures.ProcessPoolExecutor`, and merging the
per-fault results back **in input order** — the merged
:class:`~repro.sim.fault_sim.FaultSimResult` is bit-identical to a serial
run (the equivalence tests assert this down to the first-detect indices),
so callers never observe the parallelism.

Design notes:

* workers are primed once (per pool) with the circuit, the stimulus, and —
  in exact mode — the parent's good-circuit words, so each worker replays
  the same fault-free state instead of re-deriving it per chunk;
* cooperative budgets are honored *inside* workers: each chunk gets a
  fresh-clock budget whose ``max_patterns`` share is proportional to its
  chunk size.  :class:`~repro.errors.BudgetExceededError` does not survive
  pickling (it has a custom constructor), so workers return a sentinel
  payload the parent re-raises as the real exception, first chunk first —
  deterministic regardless of which worker finished when;
* anything that prevents the pool from working (unpicklable circuit, a
  sandbox that forbids ``fork``, a broken pool) degrades to the serial
  path with the caller's original budget, never to an error.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import obs
from ..errors import BudgetExceededError, SimulationError
from ..resilience import Budget
from .compile import get_compiled, resolve_kernel, seed_registry
from .fault_sim import FaultSimResult, FaultSimulator
from .faults import Fault

__all__ = ["run_parallel", "split_chunks"]

#: Below this many faults per requested job the pool overhead cannot pay
#: for itself; the call silently runs serially.
MIN_FAULTS_PER_JOB = 4

# ---------------------------------------------------------------------------
# Worker side.  State is primed once per worker process via the pool
# initializer; chunks then only carry the fault lists.
# ---------------------------------------------------------------------------

_WORKER_STATE: Optional[Dict[str, object]] = None


def _init_worker(
    circuit,
    stimulus: Mapping[str, int],
    n_patterns: int,
    mode: str,
    block: int,
    good_values: Optional[Mapping[str, int]],
    good_blocks: Optional[List[Tuple[int, Mapping[str, int]]]],
    kernel: str = "interp",
    kernel_sources: Optional[Dict[str, str]] = None,
    kernel_cone_meta: Optional[Dict[str, int]] = None,
) -> None:
    """Prime one worker process with the shared simulation state.

    ``kernel_sources`` carries the parent's already-generated kernel
    *source strings* (compiled code objects don't pickle); the worker
    seeds its registry with them and re-``exec``s each kernel lazily on
    first use, so chunk work never re-derives codegen the parent already
    paid for.
    """
    global _WORKER_STATE
    # The parent's recorder (file handles, span stacks) must not be
    # inherited into forked workers — concurrent writes would interleave.
    obs.set_recorder(None)
    if kernel == "compiled" and kernel_sources:
        seed_registry(circuit, kernel_sources, kernel_cone_meta)
    _WORKER_STATE = {
        "sim": FaultSimulator(circuit, kernel=kernel),
        "stimulus": stimulus,
        "n_patterns": n_patterns,
        "mode": mode,
        "block": block,
        "good_values": good_values,
        "good_blocks": good_blocks,
    }


def _simulate_chunk(
    task: Tuple[Sequence[Fault], Optional[Dict[str, Optional[float]]]],
):
    """Simulate one fault chunk; returns a picklable result payload.

    Success payload: ``("ok", words, first_detects, gate_evals)`` with the
    lists aligned to the chunk's fault order.  Budget exhaustion payload:
    ``("budget", resource, limit, spent, where)`` — the parent re-raises,
    because :class:`BudgetExceededError` itself cannot round-trip pickle.
    """
    chunk, budget_spec = task
    state = _WORKER_STATE
    assert state is not None, "worker used before initialization"
    sim: FaultSimulator = state["sim"]  # type: ignore[assignment]
    budget = None
    if budget_spec is not None:
        budget = Budget(
            wall_ms=budget_spec.get("wall_ms"),
            max_patterns=budget_spec.get("max_patterns"),
        )
    evals_before = sim.gate_evals
    try:
        if state["mode"] == "coverage":
            result = sim.run_coverage(
                state["stimulus"],  # type: ignore[arg-type]
                state["n_patterns"],  # type: ignore[arg-type]
                faults=chunk,
                budget=budget,
                block=state["block"],  # type: ignore[arg-type]
                good_blocks=state["good_blocks"],  # type: ignore[arg-type]
            )
        else:
            result = sim.run(
                state["stimulus"],  # type: ignore[arg-type]
                state["n_patterns"],  # type: ignore[arg-type]
                faults=chunk,
                budget=budget,
                good_values=state["good_values"],  # type: ignore[arg-type]
            )
    except BudgetExceededError as exc:
        return ("budget", exc.resource, exc.limit, exc.spent, exc.where)
    words = [result.detection_word[f] for f in chunk]
    firsts = [result.first_detect[f] for f in chunk]
    return ("ok", words, firsts, sim.gate_evals - evals_before)


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------


def split_chunks(items: Sequence, n: int) -> List[List]:
    """Split ``items`` into ``n`` contiguous, near-equal chunks.

    Contiguity is what makes the parallel merge deterministic: chunk
    boundaries depend only on ``(len(items), n)``, never on scheduling.
    Empty chunks are omitted.
    """
    if n <= 0:
        raise ValueError("chunk count must be positive")
    out: List[List] = []
    base, extra = divmod(len(items), n)
    start = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        if size:
            out.append(list(items[start : start + size]))
        start += size
    return out


def _chunk_budget_specs(
    budget: Optional[Budget], chunks: Sequence[Sequence[Fault]]
) -> List[Optional[Dict[str, Optional[float]]]]:
    """Per-chunk budget specs: fresh clocks, proportional pattern shares."""
    if budget is None:
        return [None] * len(chunks)
    total = sum(len(c) for c in chunks)
    max_patterns = budget.limits["patterns"]
    specs: List[Optional[Dict[str, Optional[float]]]] = []
    for chunk in chunks:
        share: Optional[int] = None
        if max_patterns is not None:
            share = (max_patterns * len(chunk)) // max(total, 1)
        specs.append({"wall_ms": budget.wall_ms, "max_patterns": share})
    return specs


def run_parallel(
    circuit,
    stimulus: Mapping[str, int],
    n_patterns: int,
    faults: Optional[Sequence[Fault]] = None,
    collapse: bool = True,
    jobs: int = 1,
    mode: str = "exact",
    block: int = 64,
    budget: Optional[Budget] = None,
    kernel: Optional[str] = None,
) -> FaultSimResult:
    """Fault-simulate with the fault list fanned out over ``jobs`` processes.

    Parameters
    ----------
    circuit, stimulus, n_patterns, faults, collapse:
        As for :meth:`~repro.sim.fault_sim.FaultSimulator.run`.
    jobs:
        Worker process count.  ``jobs <= 1`` (or a fault list too small to
        amortize the pool) runs serially in-process; the result is
        identical either way.
    mode:
        ``"exact"`` (full detection words, :meth:`run`) or ``"coverage"``
        (fault dropping, :meth:`run_coverage`).
    block:
        Initial dropping-block size for ``mode="coverage"``.
    budget:
        Optional cooperative budget.  In the parallel path each chunk is
        enforced inside its worker with a fresh clock and a proportional
        ``max_patterns`` share; exhaustion in any chunk raises
        :class:`BudgetExceededError` in the parent (first chunk in fault
        order wins, for determinism).
    kernel:
        ``"compiled"`` (default) or ``"interp"``; forwarded to every
        worker's simulator.  Workers receive the parent's generated
        kernel sources and rebuild the code objects on first use.
    """
    if mode not in ("exact", "coverage"):
        raise SimulationError(f"unknown parallel fault-sim mode {mode!r}")
    kernel = resolve_kernel(kernel)
    sim = FaultSimulator(circuit, kernel=kernel)
    faults = sim._resolve_faults(faults, collapse)

    def serial() -> FaultSimResult:
        if mode == "coverage":
            return sim.run_coverage(
                stimulus, n_patterns, faults=faults, budget=budget, block=block
            )
        return sim.run(stimulus, n_patterns, faults=faults, budget=budget)

    if jobs <= 1 or len(faults) < MIN_FAULTS_PER_JOB * jobs:
        return serial()

    chunks = split_chunks(faults, jobs)
    specs = _chunk_budget_specs(budget, chunks)
    # The good machine is simulated once, in the parent; workers replay
    # the shared words (free under fork, one pickle under spawn).
    good_values = None
    good_blocks = None
    if mode == "exact":
        good_values = sim._logic.run(stimulus, n_patterns)
    else:
        good_blocks = list(sim.coverage_blocks(stimulus, n_patterns, block))
    kernel_sources: Optional[Dict[str, str]] = None
    kernel_cone_meta: Optional[Dict[str, int]] = None
    if kernel == "compiled":
        entry = get_compiled(circuit)
        kernel_sources = dict(entry.sources)
        kernel_cone_meta = dict(entry.cone_meta)
    with obs.span(
        "fault_sim.parallel",
        circuit=circuit.name,
        n_patterns=n_patterns,
        n_faults=len(faults),
        jobs=jobs,
        mode=mode,
    ) as sp:
        start = perf_counter()
        try:
            # ``jobs`` fixes the chunking (and therefore the merge order and
            # budget shares); the worker count is additionally capped at the
            # machine's usable cores — oversubscribing only adds fork and
            # scheduling overhead, never throughput.
            try:
                usable = len(os.sched_getaffinity(0))
            except AttributeError:  # platforms without affinity support
                usable = os.cpu_count() or 1
            with ProcessPoolExecutor(
                max_workers=min(len(chunks), max(usable, 1)),
                initializer=_init_worker,
                initargs=(
                    circuit,
                    stimulus,
                    n_patterns,
                    mode,
                    block,
                    good_values,
                    good_blocks,
                    kernel,
                    kernel_sources,
                    kernel_cone_meta,
                ),
            ) as pool:
                payloads = list(
                    pool.map(_simulate_chunk, zip(chunks, specs))
                )
        except BudgetExceededError:
            raise
        except Exception as exc:  # pool unusable: degrade, don't fail
            obs.event(
                "fault_sim.parallel_fallback",
                error=type(exc).__name__,
                detail=str(exc)[:200],
            )
            return serial()

        result = FaultSimResult(
            n_patterns=n_patterns, coverage_only=(mode == "coverage")
        )
        detected = 0
        worker_evals = 0
        for chunk, payload in zip(chunks, payloads):
            if payload[0] == "budget":
                _tag, resource, limit, spent, where = payload
                raise BudgetExceededError(
                    resource, limit, spent, where=where or "fault_sim.parallel"
                )
            _tag, words, firsts, evals = payload
            worker_evals += evals
            for fault, word, first in zip(chunk, words, firsts):
                result.detection_word[fault] = word
                result.first_detect[fault] = first
                if word:
                    detected += 1
        result._n_detected = detected
        seconds = perf_counter() - start
        sp.set(detected=detected, gate_evals=worker_evals, seconds=seconds)
    obs.count("fault_sim.runs")
    obs.count("fault_sim.parallel_runs")
    obs.count("fault_sim.patterns", n_patterns)
    obs.count("fault_sim.faults", len(faults))
    obs.count("fault_sim.dropped", detected)
    obs.count("fault_sim.undetected", len(faults) - detected)
    obs.count("fault_sim.gate_evals", worker_evals)
    if seconds > 0.0:
        obs.gauge("fault_sim.gate_evals_per_sec", worker_evals / seconds)
    obs.observe("fault_sim.run_seconds", seconds)
    return result
