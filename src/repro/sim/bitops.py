"""Packed bit-vector helpers for pattern-parallel simulation.

A *word* is an arbitrary-precision Python integer whose bit ``i`` carries a
signal's value under pattern ``i``.  Python's bignum kernel executes the
bitwise operators in C over the whole vector at once, so a single pass over
a levelized netlist simulates **all** patterns simultaneously — the
pattern-parallel trick that makes the pure-Python fault simulator workable
at benchmark scale (repro band note: "fault sim slower but workable").
"""

from __future__ import annotations

import random
from typing import Iterable, List

try:  # numpy is a declared dependency, but the int-word core must not need it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    _np = None

__all__ = [
    "ones_mask",
    "bit_get",
    "bit_set",
    "popcount",
    "random_word",
    "weighted_random_word",
    "pack_bits",
    "unpack_bits",
    "pack_patterns",
    "unpack_patterns",
    "split_word_blocks",
    "word_count",
    "word_to_ndarray",
    "ndarray_to_word",
    "pack_bits_ndarray",
    "unpack_bits_ndarray",
    "pack_patterns_ndarray",
]


def ones_mask(n_patterns: int) -> int:
    """Return a word with the low ``n_patterns`` bits set."""
    if n_patterns < 0:
        raise ValueError("pattern count cannot be negative")
    return (1 << n_patterns) - 1


def split_word_blocks(word: int, sizes: List[int]) -> List[int]:
    """Split ``word`` into consecutive blocks of ``sizes`` bits, low first.

    ``result[i]`` holds bits ``[offset_i, offset_i + sizes[i])`` of
    ``word`` shifted down to bit 0.  Blocks are peeled off **high end
    first**: a right shift only pays for the bits it keeps, so extracting
    the top block costs O(block) and masking the remainder costs O(rest) —
    with geometrically growing sizes the whole split is O(total bits),
    where the naive low-first ``(word >> offset) & mask`` scan would be
    O(total × blocks).
    """
    offsets = [0] * len(sizes)
    total = 0
    for i, size in enumerate(sizes):
        if size <= 0:
            raise ValueError("block sizes must be positive")
        offsets[i] = total
        total += size
    out = [0] * len(sizes)
    rem = word & ones_mask(total)
    for i in range(len(sizes) - 1, -1, -1):
        out[i] = rem >> offsets[i]
        rem &= ones_mask(offsets[i])
    return out


def bit_get(word: int, i: int) -> int:
    """Return bit ``i`` of ``word`` (0 or 1)."""
    return (word >> i) & 1


def bit_set(word: int, i: int, value: int) -> int:
    """Return ``word`` with bit ``i`` forced to ``value``."""
    if value:
        return word | (1 << i)
    return word & ~(1 << i)


def popcount(word: int) -> int:
    """Number of set bits in ``word``."""
    return word.bit_count()


def random_word(n_patterns: int, rng: random.Random) -> int:
    """Uniformly random ``n_patterns``-bit word (each bit fair)."""
    if n_patterns == 0:
        return 0
    return rng.getrandbits(n_patterns)


def weighted_random_word(n_patterns: int, weight: float, rng: random.Random) -> int:
    """Random word whose bits are 1 with probability ``weight``.

    Implemented by AND/OR-combining fair words to reach a dyadic
    approximation of ``weight`` with 8-bit resolution — far faster than a
    per-bit Bernoulli loop and statistically adequate for weighted-random
    test generation.
    """
    if not 0.0 <= weight <= 1.0:
        raise ValueError("weight must lie in [0, 1]")
    if n_patterns == 0:
        return 0
    # Build the dyadic expansion: start from the least significant bit of
    # the 8-bit fraction.  AND with a fair word halves the probability;
    # OR-ing in a fair word maps p -> (1+p)/2.
    frac = round(weight * 256)
    if frac <= 0:
        return 0
    if frac >= 256:
        return ones_mask(n_patterns)
    word = 0
    seen_one = False
    for bit_idx in range(8):  # LSB to MSB of the fraction
        bit = (frac >> bit_idx) & 1
        fair = random_word(n_patterns, rng)
        if not seen_one:
            if bit:
                word = fair
                seen_one = True
            continue
        if bit:
            word |= fair  # p -> (1 + p) / 2
        else:
            word &= fair  # p -> p / 2
    return word


def pack_bits(bits: Iterable[int]) -> int:
    """Pack an iterable of 0/1 values into a word (first bit = bit 0)."""
    word = 0
    for i, b in enumerate(bits):
        if b:
            word |= 1 << i
    return word


#: byte value -> its 8 bits, LSB first (drives the byte-at-a-time unpack).
_BYTE_BITS = [tuple((b >> i) & 1 for i in range(8)) for b in range(256)]


def unpack_bits(word: int, n_patterns: int) -> List[int]:
    """Expand a word into a list of 0/1 ints of length ``n_patterns``.

    Chunked through the bignum's byte export plus a 256-entry lookup
    table — eight bits per step instead of one shift-and-mask per bit.
    Negative words (infinite two's-complement bit strings) fall back to
    the per-bit scan.
    """
    if n_patterns <= 0:
        return []
    if word < 0:
        return [(word >> i) & 1 for i in range(n_patterns)]
    low = word & ((1 << n_patterns) - 1)
    bits: List[int] = []
    table = _BYTE_BITS
    for byte in low.to_bytes((n_patterns + 7) >> 3, "little"):
        bits.extend(table[byte])
    del bits[n_patterns:]
    return bits


def pack_patterns(patterns: List[List[int]], n_signals: int) -> List[int]:
    """Transpose pattern-major 0/1 matrices into signal-major packed words.

    ``patterns[p][s]`` is the value of signal ``s`` under pattern ``p``; the
    result has one word per signal with pattern ``p`` in bit ``p``.

    Bits are staged in per-signal bytearrays and converted once at the
    end: ``word |= 1 << p`` would copy the whole growing bignum per set
    bit (O(patterns²) bit-work per signal), while a bytearray store is
    O(1) and ``int.from_bytes`` is a single linear pass.
    """
    n_bytes = (len(patterns) + 7) >> 3
    buffers = [bytearray(n_bytes) for _ in range(n_signals)]
    for p, pattern in enumerate(patterns):
        if len(pattern) != n_signals:
            raise ValueError(
                f"pattern {p} has {len(pattern)} values; expected {n_signals}"
            )
        index = p >> 3
        bit = 1 << (p & 7)
        for s, value in enumerate(pattern):
            if value:
                buffers[s][index] |= bit
    return [int.from_bytes(buf, "little") for buf in buffers]


def unpack_patterns(words: List[int], n_patterns: int) -> List[List[int]]:
    """Inverse of :func:`pack_patterns`."""
    return [[(w >> p) & 1 for w in words] for p in range(n_patterns)]


# ---------------------------------------------------------------------------
# uint64 ndarray bridge (word-parallel numpy backend)
#
# The numpy backend stores each signal as a little-endian ``(n_words,)``
# uint64 vector: pattern ``i`` lives in bit ``i % 64`` of element ``i // 64``,
# so ``word == sum(arr[k] << (64 * k))``.  Both layouts export the same byte
# string (CPython bignums and ``<u8`` arrays are little-endian over bytes),
# which makes the conversions below byte-copies at worst and zero-copy views
# where the buffer protocol allows it.
# ---------------------------------------------------------------------------


def _require_numpy():
    if _np is None:  # pragma: no cover - exercised only on stripped installs
        raise RuntimeError(
            "numpy is required for ndarray word packing but is not installed"
        )
    return _np


def word_count(n_patterns: int) -> int:
    """Number of 64-bit words needed to hold ``n_patterns`` pattern bits."""
    if n_patterns < 0:
        raise ValueError("pattern count cannot be negative")
    return (n_patterns + 63) >> 6


def word_to_ndarray(word: int, n_patterns: int):
    """Expand an int word into a read-only little-endian uint64 ndarray.

    The result is a zero-copy :func:`numpy.frombuffer` view over the
    bignum's single byte export (``int.to_bytes``); bits above
    ``n_patterns`` are masked off so the array round-trips exactly through
    :func:`ndarray_to_word`.  Copy the array before mutating it.
    """
    np = _require_numpy()
    n_words = word_count(n_patterns)
    buf = (word & ones_mask(n_patterns)).to_bytes(n_words * 8, "little")
    return np.frombuffer(buf, dtype="<u8")


def ndarray_to_word(arr) -> int:
    """Collapse a little-endian uint64 ndarray back into an int word.

    Reads the array's buffer directly (no per-element Python loop); a
    contiguous native little-endian array converts without copying the
    payload more than once.
    """
    np = _require_numpy()
    arr = np.ascontiguousarray(arr, dtype="<u8")
    return int.from_bytes(arr.data, "little")


def pack_bits_ndarray(bits: Iterable[int]):
    """Pack an iterable of 0/1 values into a uint64 ndarray (bit 0 first).

    Equivalent to ``word_to_ndarray(pack_bits(bits), len(bits))`` but built
    with :func:`numpy.packbits` — no intermediate bignum.
    """
    np = _require_numpy()
    arr = np.asarray(list(bits) if not hasattr(bits, "__len__") else bits,
                     dtype=np.uint8)
    packed = np.packbits(arr, bitorder="little")
    pad = (-packed.size) % 8
    if pad:
        packed = np.concatenate([packed, np.zeros(pad, dtype=np.uint8)])
    if packed.size == 0:
        return np.zeros(0, dtype="<u8")
    return packed.view("<u8")


def unpack_bits_ndarray(arr, n_patterns: int) -> List[int]:
    """Expand a uint64 ndarray into a list of 0/1 ints (bit 0 first).

    Exact inverse of :func:`pack_bits_ndarray`; matches
    :func:`unpack_bits` applied to :func:`ndarray_to_word`.
    """
    np = _require_numpy()
    if n_patterns <= 0:
        return []
    arr = np.ascontiguousarray(arr, dtype="<u8")
    bits = np.unpackbits(arr.view(np.uint8), count=n_patterns, bitorder="little")
    return bits.tolist()


def pack_patterns_ndarray(patterns: List[List[int]], n_signals: int):
    """Transpose a pattern-major 0/1 matrix into a signal-major uint64 array.

    ndarray analogue of :func:`pack_patterns`: the result has shape
    ``(n_signals, word_count(len(patterns)))`` and row ``s`` equals
    ``word_to_ndarray(pack_patterns(patterns, n_signals)[s], len(patterns))``.
    """
    np = _require_numpy()
    n_patterns = len(patterns)
    for p, pattern in enumerate(patterns):
        if len(pattern) != n_signals:
            raise ValueError(
                f"pattern {p} has {len(pattern)} values; expected {n_signals}"
            )
    n_words = word_count(n_patterns)
    if n_patterns == 0:
        return np.zeros((n_signals, n_words), dtype="<u8")
    matrix = np.asarray(patterns, dtype=np.uint8)  # (n_patterns, n_signals)
    packed = np.packbits(matrix.T, axis=1, bitorder="little")
    out = np.zeros((n_signals, n_words * 8), dtype=np.uint8)
    out[:, : packed.shape[1]] = packed
    return out.view("<u8")
