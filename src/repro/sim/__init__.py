"""Simulation substrate: logic simulation, fault model, fault simulation.

Everything is *pattern-parallel*: signal values across all patterns are
packed into single arbitrary-precision integers (:mod:`repro.sim.bitops`),
so a full stimulus set is simulated in one pass over the levelized netlist.
"""

from .backend import (
    CompiledBackend,
    InterpBackend,
    NumpyBackend,
    SimulationBackend,
    get_backend,
)
from .bitops import (
    bit_get,
    bit_set,
    ndarray_to_word,
    ones_mask,
    pack_bits,
    pack_patterns,
    popcount,
    random_word,
    split_word_blocks,
    unpack_bits,
    unpack_patterns,
    weighted_random_word,
    word_count,
    word_to_ndarray,
)
from .compile import (
    DEFAULT_KERNEL,
    KERNEL_MODES,
    CompiledCircuit,
    clear_registry,
    get_compiled,
    invalidate,
    resolve_kernel,
    seed_registry,
)
from .fault_sim import FaultSimResult, FaultSimulator, fault_coverage
from .faults import (
    CollapsedFaultSet,
    Fault,
    all_stuck_at_faults,
    checkpoint_faults,
    collapse_faults,
    testable_stuck_at_faults,
)
from .lfsr import LFSR, PRIMITIVE_TAPS, primitive_taps
from .logic_sim import (
    LogicSimulator,
    signal_probabilities_by_simulation,
    simulate,
)
from .parallel import run_parallel, split_chunks
from .patterns import (
    ExhaustiveSource,
    ExplicitSource,
    LFSRSource,
    PatternSource,
    UniformRandomSource,
    WeightedRandomSource,
)

__all__ = [
    "DEFAULT_KERNEL",
    "KERNEL_MODES",
    "CompiledCircuit",
    "resolve_kernel",
    "get_compiled",
    "seed_registry",
    "invalidate",
    "clear_registry",
    "SimulationBackend",
    "InterpBackend",
    "CompiledBackend",
    "NumpyBackend",
    "get_backend",
    "ones_mask",
    "word_count",
    "word_to_ndarray",
    "ndarray_to_word",
    "bit_get",
    "bit_set",
    "popcount",
    "random_word",
    "weighted_random_word",
    "pack_bits",
    "unpack_bits",
    "pack_patterns",
    "unpack_patterns",
    "LFSR",
    "PRIMITIVE_TAPS",
    "primitive_taps",
    "PatternSource",
    "UniformRandomSource",
    "WeightedRandomSource",
    "LFSRSource",
    "ExhaustiveSource",
    "ExplicitSource",
    "LogicSimulator",
    "simulate",
    "signal_probabilities_by_simulation",
    "Fault",
    "all_stuck_at_faults",
    "testable_stuck_at_faults",
    "checkpoint_faults",
    "collapse_faults",
    "CollapsedFaultSet",
    "FaultSimulator",
    "FaultSimResult",
    "fault_coverage",
    "split_word_blocks",
    "run_parallel",
    "split_chunks",
]
