"""Per-circuit compiled simulation kernels (codegen for the hot loops).

Every experiment ultimately bottoms out in one of three inner loops: the
levelized pattern-parallel gate walk (:class:`~repro.sim.logic_sim.
LogicSimulator`), the per-fault cone propagation (:class:`~repro.sim.
fault_sim.FaultSimulator`), and the COP probability passes
(:mod:`repro.testability.cop`, :func:`repro.core.virtual.
evaluate_placement`).  Interpreted, each visited gate pays dict lookups,
``GateType`` dispatch through :func:`~repro.circuit.gates.evaluate_gate`
or :func:`~repro.circuit.gates.output_probability`, and list building.

This module removes that per-gate overhead by *compiling the circuit
itself*: for a given netlist it generates Python source in which the
gates are flattened into straight-line local-variable expressions —
``v7 = (v3 & v5) ^ mask`` instead of an interpreted dispatch — and
``exec``s it into a callable.  Python's compiler then does the dispatch
once, at build time, and each call runs pure bytecode over locals.

Kernel flavors (generated lazily, each cached per circuit):

* **logic** — the fault-free machine: all gates in levelized order,
  returning the node → packed-word dict of ``LogicSimulator.run``;
* **cone:**\\ *node* — faulty-machine propagation specialized to one
  fault-site fanout cone, with the forced value at the site passed in as
  a parameter (one kernel serves both stuck polarities and every branch
  fault injected at that gate); the ``:diffs`` variant also returns
  per-output difference words for response compaction;
* **cop_fwd / cop_bwd** — the plain COP probability and observability
  passes of :mod:`repro.testability.cop`;
* **place** — the placement-aware forward+backward pass of
  :func:`repro.core.virtual.evaluate_placement`, with test-point site
  state supplied at call time (the netlist is compiled once per circuit,
  not once per placement).

Everything is **bit-identical** to the interpreted code: generated
expressions mirror the interpreter's operation order exactly (including
float evaluation order in the COP passes), and the property tests pin
every kernel to its interpreted ground truth on random circuits.  The
interpreted paths remain available behind ``kernel="interp"`` switches.

Caching and invalidation
------------------------
Kernels live in a process-wide registry keyed by
:meth:`~repro.circuit.netlist.Circuit.structural_hash`, so structurally
identical circuits share compiled code and a netlist rewrite (which bumps
the structural revision and therefore the hash) can never be served stale
kernels.  :func:`invalidate` / :func:`clear_registry` evict explicitly;
the registry is LRU-bounded.

Pickle strategy: compiled code objects do not pickle, generated *source*
does.  :class:`CompiledCircuit` therefore drops its callables on pickling
and keeps the source strings; :func:`seed_registry` lets the parallel
fault-sim workers adopt the parent's sources and rebuild the callables
on first use (see :mod:`repro.sim.parallel`).

Observability: ``kernel.compiles``, ``kernel.cache_hits``, and
``kernel.source_gens`` counters plus per-compile ``kernel.compile`` spans
show how the one-time codegen cost amortizes over a run.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..circuit.gates import GateType
from ..circuit.netlist import Circuit
from ..errors import SimulationError

__all__ = [
    "DEFAULT_KERNEL",
    "KERNEL_MODES",
    "CompiledCircuit",
    "resolve_kernel",
    "get_compiled",
    "seed_registry",
    "invalidate",
    "clear_registry",
    "registry_size",
    "generate_logic_source",
    "generate_cone_source",
    "generate_cop_forward_source",
    "generate_cop_backward_source",
    "generate_placement_source",
]

#: The kernel modes every simulation entry point accepts.
KERNEL_MODES = ("compiled", "interp", "numpy")

#: Process-wide default used when a ``kernel=None`` argument is passed.
DEFAULT_KERNEL = "compiled"


def resolve_kernel(kernel: Optional[str]) -> str:
    """Default / validate a ``kernel=`` argument."""
    if kernel is None:
        return DEFAULT_KERNEL
    if kernel not in KERNEL_MODES:
        raise SimulationError(
            f"unknown kernel mode {kernel!r} (choose from {KERNEL_MODES})"
        )
    if kernel == "numpy":
        # Lazy import: the word-parallel backend needs numpy, which the
        # int-word core deliberately does not.
        from . import npsim

        if not npsim.HAVE_NUMPY:
            raise SimulationError(
                "kernel 'numpy' requires numpy, which is not installed"
            )
    return kernel


# ---------------------------------------------------------------------------
# Compiled-kernel container and registry
# ---------------------------------------------------------------------------


class CompiledCircuit:
    """All compiled kernels of one circuit structure.

    Holds generated source strings (picklable) and the materialized
    callables (process-local, rebuilt from source on first use after a
    pickle round-trip).  Obtained via :func:`get_compiled`; keyed by the
    circuit's structural hash, so a mutated circuit maps to a *different*
    instance and can never reuse stale code.
    """

    def __init__(self, structural_hash: str, name: str) -> None:
        self.structural_hash = structural_hash
        self.name = name
        #: kernel key → generated Python source (pickles; code doesn't).
        self.sources: Dict[str, str] = {}
        #: cone kernel key → number of gate evaluations per invocation
        #: (keeps the ``gate_evals`` throughput counter meaningful).
        self.cone_meta: Dict[str, int] = {}
        self._fns: Dict[str, Callable] = {}
        # Registry entries are shared across threads; generation/exec of
        # one kernel must happen exactly once (RLock: ``generate`` may
        # recurse into this entry for a sibling kernel).
        self._lock = threading.RLock()

    # -- pickling: ship sources, rebuild callables lazily ---------------
    def __getstate__(self) -> Dict[str, object]:
        return {
            "structural_hash": self.structural_hash,
            "name": self.name,
            "sources": dict(self.sources),
            "cone_meta": dict(self.cone_meta),
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.structural_hash = state["structural_hash"]  # type: ignore[assignment]
        self.name = state["name"]  # type: ignore[assignment]
        self.sources = dict(state["sources"])  # type: ignore[arg-type]
        self.cone_meta = dict(state["cone_meta"])  # type: ignore[arg-type]
        self._fns = {}
        self._lock = threading.RLock()

    # -- kernel access ---------------------------------------------------
    def function(self, key: str, generate: Callable[[], str]) -> Callable:
        """The callable for ``key``, generating/compiling if needed.

        ``generate`` is invoked only when no source is cached yet (it may
        also record ``cone_meta``); a cached source is re-``exec``'d
        without regeneration — the worker-rebuild path.
        """
        fn = self._fns.get(key)
        if fn is not None:
            obs.count("kernel.cache_hits")
            return fn
        with self._lock:
            fn = self._fns.get(key)
            if fn is not None:  # lost the race; the winner compiled it
                obs.count("kernel.cache_hits")
                return fn
            source = self.sources.get(key)
            if source is None:
                source = generate()
                self.sources[key] = source
                obs.count("kernel.source_gens")
            fn = self._materialize(key, source)
            self._fns[key] = fn
            return fn

    def _materialize(self, key: str, source: str) -> Callable:
        with obs.span("kernel.compile", circuit=self.name, kernel=key):
            namespace: Dict[str, object] = {}
            code = compile(source, f"<kernel {self.name}:{key}>", "exec")
            exec(code, namespace)  # noqa: S102 - self-generated source only
        obs.count("kernel.compiles")
        return namespace["kernel"]  # type: ignore[return-value]

    def compiled_keys(self) -> List[str]:
        """Keys whose callables are materialized in this process."""
        return sorted(self._fns)


#: structural hash → CompiledCircuit, LRU-bounded (simulators keep their
#: own reference, so eviction only drops the shared cache entry).  All
#: access goes through ``_REGISTRY_LOCK``: the registry is process-global
#: and e.g. a thread pool fanning incremental evaluators out over one
#: circuit hits it concurrently.
_REGISTRY: "OrderedDict[str, CompiledCircuit]" = OrderedDict()
_REGISTRY_CAP = 128
_REGISTRY_LOCK = threading.RLock()


def get_compiled(circuit: Circuit) -> CompiledCircuit:
    """The (shared) compiled-kernel container for ``circuit``'s structure.

    Thread-safe: concurrent callers for the same structure receive the
    same :class:`CompiledCircuit`, whose own lock serializes kernel
    materialization.
    """
    key = circuit.structural_hash()
    with _REGISTRY_LOCK:
        entry = _REGISTRY.get(key)
        if entry is None:
            entry = CompiledCircuit(key, circuit.name)
            _REGISTRY[key] = entry
            while len(_REGISTRY) > _REGISTRY_CAP:
                _REGISTRY.popitem(last=False)
        else:
            _REGISTRY.move_to_end(key)
        return entry


def seed_registry(
    circuit: Circuit,
    sources: Dict[str, str],
    cone_meta: Optional[Dict[str, int]] = None,
) -> CompiledCircuit:
    """Adopt pre-generated kernel sources for ``circuit`` (worker priming).

    Existing sources win (never overwrite already-validated code); the
    callables are rebuilt lazily on first use.
    """
    entry = get_compiled(circuit)
    with entry._lock:
        for key, source in sources.items():
            entry.sources.setdefault(key, source)
        if cone_meta:
            for key, n in cone_meta.items():
                entry.cone_meta.setdefault(key, n)
    return entry


def invalidate(circuit: Circuit) -> bool:
    """Drop the registry entry for ``circuit``'s current structure."""
    with _REGISTRY_LOCK:
        return _REGISTRY.pop(circuit.structural_hash(), None) is not None


def clear_registry() -> None:
    """Evict every cached compiled circuit (tests / memory pressure)."""
    with _REGISTRY_LOCK:
        _REGISTRY.clear()


def registry_size() -> int:
    """Number of circuit structures currently cached."""
    with _REGISTRY_LOCK:
        return len(_REGISTRY)


# ---------------------------------------------------------------------------
# Expression emitters — packed bitwise words
# ---------------------------------------------------------------------------
# All node words are invariantly masked (every PI and every emitted gate
# expression yields a value <= mask), so AND/OR/XOR need no re-masking and
# inversions are a single ``^ mask``.  Results are exactly the integers
# ``evaluate_gate`` produces.


def _word_expr(gate_type: GateType, vs: Sequence[str]) -> str:
    if gate_type is GateType.AND:
        return " & ".join(vs)
    if gate_type is GateType.OR:
        return " | ".join(vs)
    if gate_type is GateType.NAND:
        return f"{' & '.join(vs)} ^ mask"
    if gate_type is GateType.NOR:
        # ``|`` binds looser than ``^`` — parenthesize before inverting.
        return f"({' | '.join(vs)}) ^ mask"
    if gate_type is GateType.XOR:
        return " ^ ".join(vs)
    if gate_type is GateType.XNOR:
        return f"{' ^ '.join(vs)} ^ mask"
    if gate_type is GateType.NOT:
        return f"{vs[0]} ^ mask"
    if gate_type is GateType.BUF:
        return vs[0]
    if gate_type is GateType.CONST0:
        return "0"
    if gate_type is GateType.CONST1:
        return "mask"
    raise SimulationError(f"cannot compile gate type {gate_type!r}")


# ---------------------------------------------------------------------------
# Expression emitters — COP float arithmetic
# ---------------------------------------------------------------------------
# These mirror output_probability / side_input_sensitization_probability /
# the combine() folds OPERATION FOR OPERATION, in the same order, so the
# compiled floats are bit-identical to the interpreted ones.  The only
# algebraic simplification applied is dropping a leading ``1.0 *`` factor
# (IEEE-exact for every float) and the first XOR fold from 0.0 (exact up
# to the sign of zero, which compares equal and cannot change any
# downstream magnitude).


def _emit_prob(
    lines: List[str],
    indent: str,
    target: str,
    gate_type: GateType,
    ps: Sequence[str],
    tmp_prefix: str,
) -> None:
    """Append statements computing ``target`` = P[gate = 1] from ``ps``."""
    if gate_type is GateType.AND:
        expr = " * ".join(ps)
    elif gate_type is GateType.NAND:
        expr = f"1.0 - {' * '.join(ps)}"
    elif gate_type is GateType.OR:
        expr = f"1.0 - {' * '.join(f'(1.0 - {p})' for p in ps)}"
    elif gate_type is GateType.NOR:
        expr = " * ".join(f"(1.0 - {p})" for p in ps)
    elif gate_type in (GateType.XOR, GateType.XNOR):
        acc = ps[0]
        for j, q in enumerate(ps[1:]):
            t = f"{tmp_prefix}_{j}"
            lines.append(
                f"{indent}{t} = {acc} * (1.0 - {q}) + {q} * (1.0 - {acc})"
            )
            acc = t
        expr = f"1.0 - {acc}" if gate_type is GateType.XNOR else acc
    elif gate_type is GateType.NOT:
        expr = f"1.0 - {ps[0]}"
    elif gate_type is GateType.BUF:
        expr = ps[0]
    elif gate_type is GateType.CONST0:
        expr = "0.0"
    elif gate_type is GateType.CONST1:
        expr = "1.0"
    else:
        raise SimulationError(f"cannot compile gate type {gate_type!r}")
    lines.append(f"{indent}{target} = {expr}")


def _sens_expr(gate_type: GateType, side_ps: Sequence[str]) -> str:
    """Side-input sensitization product (parenthesized, ready to multiply)."""
    if gate_type in (GateType.AND, GateType.NAND):
        return f"({' * '.join(side_ps)})" if side_ps else "1.0"
    if gate_type in (GateType.OR, GateType.NOR):
        if not side_ps:
            return "1.0"
        return f"({' * '.join(f'(1.0 - {p})' for p in side_ps)})"
    if gate_type in (GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF):
        return "1.0"
    raise SimulationError(
        f"gate type {gate_type!r} has no observability transfer"
    )


def _or_combine_expr(contribs: Sequence[str]) -> str:
    """``1 - Π(1 - c)`` fold, in contribution order (COP stem combine)."""
    if not contribs:
        return "0.0"
    return f"1.0 - {' * '.join(f'(1.0 - {c})' for c in contribs)}"


# ---------------------------------------------------------------------------
# Source generators
# ---------------------------------------------------------------------------


def generate_logic_source(circuit: Circuit) -> str:
    """Good-machine kernel: ``kernel(stim, mask) -> {node: word}``.

    Matches ``LogicSimulator.run(stimulus, n)`` with no forces: missing
    inputs default to 0, all words masked, dict insertion order identical
    (inputs first, then gates in levelized order).
    """
    topo = circuit.topological_order()
    idx = {name: i for i, name in enumerate(topo)}
    lines = ["def kernel(stim, mask):", "    sg = stim.get"]
    entries: List[Tuple[str, str]] = []
    for name in circuit.inputs:
        v = f"v{idx[name]}"
        lines.append(f"    {v} = sg({name!r}, 0) & mask")
        entries.append((name, v))
    for name in topo:
        node = circuit.node(name)
        if node.is_input:
            continue
        v = f"v{idx[name]}"
        expr = _word_expr(node.gate_type, [f"v{idx[fi]}" for fi in node.fanins])
        lines.append(f"    {v} = {expr}")
        entries.append((name, v))
    lines.append("    return {")
    for name, v in entries:
        lines.append(f"        {name!r}: {v},")
    lines.append("    }")
    return "\n".join(lines) + "\n"


def generate_cone_source(
    circuit: Circuit,
    start: str,
    order: Sequence[str],
    variant: str = "detect",
) -> Tuple[str, int]:
    """Faulty-cone kernel specialized to the fanout cone of ``start``.

    ``kernel(gv, fstart, mask)`` takes the good-machine words and the
    forced word at ``start`` (the injection point parameter: the stuck
    word for stem faults, the re-evaluated gate output for branch faults)
    and straight-line evaluates the cone; out-of-cone fan-ins read the
    hoisted good words.  Returns the combined detection word
    (``variant="detect"``) or ``(detect, ((output, diff), ...))``
    (``variant="diffs"``).  Also returns the per-invocation gate-eval
    count for throughput accounting.
    """
    if variant not in ("detect", "diffs"):
        raise SimulationError(f"unknown cone kernel variant {variant!r}")
    if not order or order[0] != start:
        raise SimulationError(f"cone order must start at {start!r}")
    topo_idx = {name: i for i, name in enumerate(circuit.topological_order())}
    cone = set(order)
    out_set = set(circuit.outputs)

    # Good words needed: every out-of-cone fan-in, plus the good value of
    # every cone member that is a primary output (for the diff).
    needed: List[str] = []
    seen = set()

    def need(name: str) -> str:
        if name not in seen:
            seen.add(name)
            needed.append(name)
        return f"g{topo_idx[name]}"

    body: List[str] = []
    diff_terms: List[Tuple[str, str]] = []  # (output name, diff expr/var)
    body.append(f"    f{topo_idx[start]} = fstart")
    if start in out_set:
        diff_terms.append((start, f"f{topo_idx[start]} ^ {need(start)}"))
    n_gates = 0
    for name in order[1:]:
        node = circuit.node(name)
        vs = [
            f"f{topo_idx[fi]}" if fi in cone else need(fi)
            for fi in node.fanins
        ]
        body.append(f"    f{topo_idx[name]} = {_word_expr(node.gate_type, vs)}")
        n_gates += 1
        if name in out_set:
            diff_terms.append((name, f"f{topo_idx[name]} ^ {need(name)}"))

    lines = ["def kernel(gv, fstart, mask):"]
    for name in needed:
        lines.append(f"    g{topo_idx[name]} = gv[{name!r}]")
    lines.extend(body)
    if variant == "detect":
        if diff_terms:
            joined = " | ".join(f"({expr})" for _n, expr in diff_terms)
            lines.append(f"    return {joined}")
        else:
            lines.append("    return 0")
    else:
        dvars = []
        for name, expr in diff_terms:
            d = f"d{topo_idx[name]}"
            lines.append(f"    {d} = {expr}")
            dvars.append((name, d))
        detect = " | ".join(d for _n, d in dvars) if dvars else "0"
        pairs = ", ".join(f"({name!r}, {d})" for name, d in dvars)
        trailer = "," if len(dvars) == 1 else ""
        lines.append(f"    return {detect}, ({pairs}{trailer})")
    return "\n".join(lines) + "\n", n_gates


def generate_cop_forward_source(circuit: Circuit) -> str:
    """Plain COP forward pass: ``kernel(pget) -> {node: P[node = 1]}``.

    ``pget`` is ``input_probabilities.get``; matches
    :func:`repro.testability.cop.signal_probabilities` with no overrides
    (same float operations in the same order, topo insertion order).
    """
    topo = circuit.topological_order()
    idx = {name: i for i, name in enumerate(topo)}
    lines = ["def kernel(pget):"]
    for name in topo:
        node = circuit.node(name)
        p = f"p{idx[name]}"
        if node.is_input:
            lines.append(f"    {p} = float(pget({name!r}, 0.5))")
        else:
            _emit_prob(
                lines,
                "    ",
                p,
                node.gate_type,
                [f"p{idx[fi]}" for fi in node.fanins],
                f"t{idx[name]}",
            )
    lines.append("    return {")
    for name in topo:
        lines.append(f"        {name!r}: p{idx[name]},")
    lines.append("    }")
    return "\n".join(lines) + "\n"


def generate_cop_backward_source(circuit: Circuit, stem_combine: str) -> str:
    """Plain COP backward pass: ``kernel(prob) -> (node_obs, branch_obs)``.

    Matches :func:`repro.testability.cop.observabilities` with no
    ``observed`` injections, for the given ``stem_combine`` mode.
    """
    topo = circuit.topological_order()
    idx = {name: i for i, name in enumerate(topo)}
    out_set = set(circuit.outputs)
    lines = ["def kernel(prob):"]

    # Hoist every probability used as a side input.
    needed: List[str] = []
    seen = set()
    for name in topo:
        for sink, pin in circuit.fanouts(name):
            sink_node = circuit.node(sink)
            if sink_node.gate_type in (
                GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
            ):
                for p, fi in enumerate(sink_node.fanins):
                    if p != pin and fi not in seen:
                        seen.add(fi)
                        needed.append(fi)
    for name in needed:
        lines.append(f"    p{idx[name]} = prob[{name!r}]")

    node_entries: List[Tuple[str, str]] = []
    branch_entries: List[Tuple[Tuple[str, str, int], str]] = []
    edge_id = 0
    for name in reversed(topo):
        contribs: List[str] = []
        if name in out_set:
            contribs.append("1.0")
        for sink, pin in circuit.fanouts(name):
            sink_node = circuit.node(sink)
            side = [
                f"p{idx[fi]}"
                for p, fi in enumerate(sink_node.fanins)
                if p != pin
            ]
            sens = _sens_expr(sink_node.gate_type, side)
            b = f"b{edge_id}"
            edge_id += 1
            lines.append(f"    {b} = o{idx[sink]} * {sens}")
            branch_entries.append(((name, sink, pin), b))
            contribs.append(b)
        o = f"o{idx[name]}"
        if not contribs:
            lines.append(f"    {o} = 0.0")
        elif stem_combine == "max":
            if len(contribs) == 1:
                lines.append(f"    {o} = {contribs[0]}")
            else:
                lines.append(f"    {o} = max({', '.join(contribs)})")
        else:
            lines.append(f"    {o} = {_or_combine_expr(contribs)}")
        node_entries.append((name, o))

    lines.append("    node_obs = {")
    for name, o in node_entries:
        lines.append(f"        {name!r}: {o},")
    lines.append("    }")
    lines.append("    branch_obs = {")
    for key, b in branch_entries:
        lines.append(f"        {key!r}: {b},")
    lines.append("    }")
    lines.append("    return node_obs, branch_obs")
    return "\n".join(lines) + "\n"


def generate_placement_source(circuit: Circuit) -> str:
    """Placement-aware COP pass for ``evaluate_placement``.

    ``kernel(pin_get, sctl, bctl, sobs, bobs, cpt, cof)`` where
    ``pin_get`` is ``problem.input_probability``, ``sctl``/``bctl`` map
    stem site / branch key → control-point type, ``sobs``/``bobs`` are
    the observed site sets, and ``cpt``/``cof`` are
    ``control_probability_transform`` / ``control_observability_factor``.
    Returns the seven dicts of a
    :class:`~repro.core.virtual.VirtualEvaluation` in the interpreter's
    insertion orders.  Site state is data, so one compiled kernel serves
    every placement on the circuit.
    """
    topo = circuit.topological_order()
    idx = {name: i for i, name in enumerate(topo)}
    out_set = set(circuit.outputs)
    # Edge enumeration (driver topo order, then fanout order) — the same
    # order the interpreter touches branches in both passes.
    edge_id: Dict[Tuple[str, str, int], int] = {}
    for name in topo:
        for sink, pin in circuit.fanouts(name):
            edge_id[(name, sink, pin)] = len(edge_id)
    in_edge = {
        (sink, pin): (driver, e)
        for (driver, sink, pin), e in edge_id.items()
    }

    lines = [
        "def kernel(pin_get, sctl, bctl, sobs, bobs, cpt, cof):",
        "    sg = sctl.get",
        "    bg = bctl.get",
    ]
    # ------------------------------------------------------------ forward
    for name in topo:
        node = circuit.node(name)
        i = idx[name]
        if node.is_input:
            lines.append(f"    q{i} = pin_get({name!r})")
        else:
            pvs = []
            for pin, _fi in enumerate(node.fanins):
                _driver, e = in_edge[(name, pin)]
                pvs.append(f"t{e}")
            _emit_prob(lines, "    ", f"q{i}", node.gate_type, pvs, f"x{i}")
        lines.append(f"    c = sg({name!r})")
        lines.append(f"    s{i} = q{i} if c is None else cpt(c, q{i})")
        for sink, pin in circuit.fanouts(name):
            e = edge_id[(name, sink, pin)]
            key = (name, sink, pin)
            lines.append(f"    c = bg({key!r})")
            lines.append(f"    t{e} = s{i} if c is None else cpt(c, s{i})")

    # ----------------------------------------------------------- backward
    wire_entries: List[Tuple[str, str]] = []
    branch_entries: List[Tuple[Tuple[str, str, int], str]] = []
    post_entries: List[Tuple[str, str]] = []
    for name in reversed(topo):
        i = idx[name]
        ob_vars: List[str] = []
        for sink, pin in circuit.fanouts(name):
            e = edge_id[(name, sink, pin)]
            key = (name, sink, pin)
            sink_node = circuit.node(sink)
            side = []
            for p, _fi in enumerate(sink_node.fanins):
                if p != pin:
                    _d, se = in_edge[(sink, p)]
                    side.append(f"t{se}")
            sens = _sens_expr(sink_node.gate_type, side)
            lines.append(f"    x = wo{idx[sink]} * {sens}")
            lines.append(f"    c = bg({key!r})")
            lines.append("    f = 1.0 if c is None else cof(c)")
            lines.append("    z = 1.0 - f * x")
            lines.append(f"    if {key!r} in bobs:")
            lines.append("        z = z * (1.0 - 1.0)")
            lines.append(f"    ob{e} = 1.0 - z")
            branch_entries.append((key, f"ob{e}"))
            ob_vars.append(f"ob{e}")
        contribs = (["1.0"] if name in out_set else []) + ob_vars
        lines.append(f"    po{i} = {_or_combine_expr(contribs)}")
        post_entries.append((name, f"po{i}"))
        lines.append(f"    c = sg({name!r})")
        lines.append("    f = 1.0 if c is None else cof(c)")
        lines.append(f"    z = 1.0 - f * po{i}")
        lines.append(f"    if {name!r} in sobs:")
        lines.append("        z = z * (1.0 - 1.0)")
        lines.append(f"    wo{i} = 1.0 - z")
        wire_entries.append((name, f"wo{i}"))

    # ------------------------------------------------------------ returns
    def dict_lines(var: str, entries, key_repr) -> None:
        lines.append(f"    {var} = {{")
        for key, value in entries:
            lines.append(f"        {key_repr(key)}: {value},")
        lines.append("    }")

    dict_lines(
        "stem_pre", [(n, f"q{idx[n]}") for n in topo], repr
    )
    dict_lines(
        "stem_post", [(n, f"s{idx[n]}") for n in topo], repr
    )
    branch_fwd = [
        (key, f"s{idx[key[0]]}") for key in edge_id
    ]
    dict_lines("branch_pre", branch_fwd, repr)
    dict_lines(
        "branch_post", [(key, f"t{e}") for key, e in edge_id.items()], repr
    )
    dict_lines("wire_obs", wire_entries, repr)
    dict_lines("branch_obs", branch_entries, repr)
    dict_lines("stem_post_obs", post_entries, repr)
    lines.append(
        "    return (stem_pre, stem_post, branch_pre, branch_post, "
        "wire_obs, branch_obs, stem_post_obs)"
    )
    return "\n".join(lines) + "\n"
