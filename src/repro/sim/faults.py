"""Single stuck-at fault model: sites, enumeration, equivalence collapsing.

Fault sites follow the classic wire-level convention:

* a **stem fault** sits on a node's output wire (``Fault(node, v)``);
* a **branch fault** sits on one fanout branch — the wire entering pin
  ``pin`` of gate ``sink`` (``Fault(node, v, branch=(sink, pin))``).  Branch
  faults are only distinct sites when the driver has fanout > 1; for
  fanout-1 drivers the branch *is* the stem.

Structural equivalence collapsing merges faults no test can distinguish
(e.g. any input s-a-0 of an AND gate with its output s-a-0), cutting the
fault list by the usual ~40% and making coverage numbers comparable with
the literature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit

__all__ = [
    "Fault",
    "all_stuck_at_faults",
    "testable_stuck_at_faults",
    "checkpoint_faults",
    "collapse_faults",
    "CollapsedFaultSet",
]


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault.

    Attributes
    ----------
    node:
        Name of the driving node whose wire is faulty.
    value:
        The stuck value, 0 or 1.
    branch:
        ``None`` for a stem fault; ``(sink_gate, pin)`` for a fanout-branch
        fault affecting only that connection.
    """

    node: str
    value: int
    branch: Optional[Tuple[str, int]] = None

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck value must be 0 or 1")

    @property
    def is_branch(self) -> bool:
        """True for a fanout-branch fault."""
        return self.branch is not None

    def sort_key(self) -> Tuple[str, int, Tuple[str, int]]:
        """Total-order key (stem faults sort before their branches)."""
        return (self.node, self.value, self.branch or ("", -1))

    def __lt__(self, other: "Fault") -> bool:
        if not isinstance(other, Fault):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def describe(self) -> str:
        """Human-readable site description, e.g. ``'n3->g7.1 s-a-0'``."""
        if self.branch is None:
            site = self.node
        else:
            site = f"{self.node}->{self.branch[0]}.{self.branch[1]}"
        return f"{site} s-a-{self.value}"


def all_stuck_at_faults(circuit: Circuit) -> List[Fault]:
    """Enumerate the full (uncollapsed) single stuck-at fault list.

    Every node contributes stem s-a-0/s-a-1; every fanout branch of a stem
    with fanout > 1 contributes branch s-a-0/s-a-1.  Constant tie cells get
    only the fault opposite their tied value (the other is undetectable by
    construction).
    """
    faults: List[Fault] = []
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.gate_type is GateType.CONST0:
            faults.append(Fault(name, 1))
        elif node.gate_type is GateType.CONST1:
            faults.append(Fault(name, 0))
        else:
            faults.append(Fault(name, 0))
            faults.append(Fault(name, 1))
        sinks = circuit.fanouts(name)
        if len(sinks) > 1:
            for sink, pin in sinks:
                faults.append(Fault(name, 0, branch=(sink, pin)))
                faults.append(Fault(name, 1, branch=(sink, pin)))
    return faults


def checkpoint_faults(circuit: Circuit) -> List[Fault]:
    """The checkpoint-theorem fault list: PI stems and fanout branches.

    For fanout-free-plus-branches circuits built from the basic gate types,
    any test set detecting all stuck-at faults on the *checkpoints* —
    primary inputs and fanout branches — detects all stuck-at faults in
    the circuit (Bossen & Hong).  This is the strongest structural
    dominance reduction and typically shrinks the list well below the
    equivalence-collapsed one.

    XOR/XNOR gates are not covered by the classic theorem; when present,
    their output stem faults are added to stay conservative.
    """
    faults: List[Fault] = []
    for name in circuit.topological_order():
        node = circuit.node(name)
        if node.is_input:
            faults.append(Fault(name, 0))
            faults.append(Fault(name, 1))
        elif node.gate_type in (GateType.XOR, GateType.XNOR) or (
            node.gate_type in (GateType.CONST0, GateType.CONST1)
        ):
            # Outside the theorem's gate basis: keep the stem faults.
            if node.gate_type is GateType.CONST0:
                faults.append(Fault(name, 1))
            elif node.gate_type is GateType.CONST1:
                faults.append(Fault(name, 0))
            else:
                faults.append(Fault(name, 0))
                faults.append(Fault(name, 1))
        sinks = circuit.fanouts(name)
        if len(sinks) > 1:
            for sink, pin in sinks:
                faults.append(Fault(name, 0, branch=(sink, pin)))
                faults.append(Fault(name, 1, branch=(sink, pin)))
    return faults


def testable_stuck_at_faults(circuit: Circuit) -> List[Fault]:
    """The fault list restricted to wires with a structural path to a PO.

    Faults on dead wires (e.g. unused primary inputs) are untestable by
    construction — no test point can help them — so solvers use this list
    as their default objective.  Coverage *measurement* still runs on the
    full collapsed list, keeping reported numbers honest.
    """
    live: set = set()
    for po in circuit.outputs:
        live |= circuit.fanin_cone(po)
    return [f for f in all_stuck_at_faults(circuit) if f.node in live]


@dataclass
class CollapsedFaultSet:
    """Result of equivalence collapsing.

    Attributes
    ----------
    representatives:
        One fault per equivalence class (deterministic choice: the
        lexicographically smallest member).
    class_of:
        Map from every original fault to its representative.
    """

    representatives: List[Fault]
    class_of: Dict[Fault, Fault]

    def size(self) -> int:
        """Number of collapsed fault classes."""
        return len(self.representatives)


class _UnionFind:
    """Minimal union-find over hashable items."""

    def __init__(self) -> None:
        self._parent: Dict[Fault, Fault] = {}

    def add(self, item: Fault) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: Fault) -> Fault:
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: Fault, b: Fault) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic: smaller fault becomes the root.
            if rb < ra:
                ra, rb = rb, ra
            self._parent[rb] = ra

    def items(self) -> List[Fault]:
        return list(self._parent)


def _input_wire_fault(circuit: Circuit, sink: str, pin: int, value: int) -> Fault:
    """The fault object sitting on pin ``pin`` of gate ``sink``.

    If the driver has fanout > 1 this is a branch fault; otherwise the
    branch coincides with the driver's stem.
    """
    driver = circuit.node(sink).fanins[pin]
    if circuit.fanout_count(driver) > 1:
        return Fault(driver, value, branch=(sink, pin))
    return Fault(driver, value)


def collapse_faults(
    circuit: Circuit, faults: Optional[List[Fault]] = None
) -> CollapsedFaultSet:
    """Structurally collapse a fault list by gate-level equivalence.

    Rules applied per gate (``o`` = output stem fault, ``i`` = each input
    wire fault):

    * AND:  ``i/0 ≡ o/0``;  NAND: ``i/0 ≡ o/1``
    * OR:   ``i/1 ≡ o/1``;  NOR:  ``i/1 ≡ o/0``
    * BUF:  ``i/v ≡ o/v``;  NOT:  ``i/v ≡ o/v̄``
    * XOR/XNOR: no structural equivalences.

    Only equivalence (not dominance) collapsing is performed, so collapsed
    coverage remains a valid coverage metric.
    """
    if faults is None:
        faults = all_stuck_at_faults(circuit)
    uf = _UnionFind()
    for f in faults:
        uf.add(f)
    fault_set = set(faults)

    def maybe_union(a: Fault, b: Fault) -> None:
        if a in fault_set and b in fault_set:
            uf.union(a, b)

    for name in circuit.topological_order():
        node = circuit.node(name)
        if not node.is_gate or not node.fanins:
            continue
        gt = node.gate_type
        out0, out1 = Fault(name, 0), Fault(name, 1)
        for pin in range(len(node.fanins)):
            in0 = _input_wire_fault(circuit, name, pin, 0)
            in1 = _input_wire_fault(circuit, name, pin, 1)
            if gt is GateType.AND:
                maybe_union(in0, out0)
            elif gt is GateType.NAND:
                maybe_union(in0, out1)
            elif gt is GateType.OR:
                maybe_union(in1, out1)
            elif gt is GateType.NOR:
                maybe_union(in1, out0)
            elif gt is GateType.BUF:
                maybe_union(in0, out0)
                maybe_union(in1, out1)
            elif gt is GateType.NOT:
                maybe_union(in0, out1)
                maybe_union(in1, out0)

    class_of: Dict[Fault, Fault] = {f: uf.find(f) for f in faults}
    representatives = sorted(set(class_of.values()))
    return CollapsedFaultSet(representatives=representatives, class_of=class_of)
