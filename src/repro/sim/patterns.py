"""Pattern sources: packed per-input stimulus generators.

Every source produces, for a given ordered list of primary inputs, one packed
word per input with pattern ``p`` in bit ``p`` (the representation consumed
by :mod:`repro.sim.logic_sim`).  Available sources:

* :class:`UniformRandomSource` — independent fair bits (the idealized
  pseudo-random generator the testability models assume);
* :class:`WeightedRandomSource` — per-input 1-probability weights;
* :class:`LFSRSource` — a real maximal-length LFSR (authentic BIST stimulus,
  including its linear-dependence artifacts);
* :class:`ExhaustiveSource` — all ``2**n`` input combinations;
* :class:`ExplicitSource` — caller-provided pattern list (deterministic
  vectors, e.g. ATPG top-off cubes).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from .bitops import pack_patterns, random_word, weighted_random_word
from .lfsr import LFSR

__all__ = [
    "PatternSource",
    "UniformRandomSource",
    "WeightedRandomSource",
    "LFSRSource",
    "ExhaustiveSource",
    "ExplicitSource",
]


class PatternSource:
    """Abstract base: generate packed stimulus for named inputs."""

    def generate(self, input_names: Sequence[str], n_patterns: int) -> Dict[str, int]:
        """Return a map input name → packed pattern word."""
        raise NotImplementedError


class UniformRandomSource(PatternSource):
    """Independent fair random bits on every input (seeded)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def generate(self, input_names: Sequence[str], n_patterns: int) -> Dict[str, int]:
        rng = random.Random(self.seed)
        return {name: random_word(n_patterns, rng) for name in input_names}


class WeightedRandomSource(PatternSource):
    """Per-input weighted random bits.

    ``weights`` maps input name → P[input = 1]; inputs not listed use
    ``default_weight``.
    """

    def __init__(
        self,
        weights: Optional[Dict[str, float]] = None,
        default_weight: float = 0.5,
        seed: int = 0,
    ) -> None:
        self.weights = dict(weights or {})
        self.default_weight = default_weight
        self.seed = seed

    def generate(self, input_names: Sequence[str], n_patterns: int) -> Dict[str, int]:
        rng = random.Random(self.seed)
        return {
            name: weighted_random_word(
                n_patterns, self.weights.get(name, self.default_weight), rng
            )
            for name in input_names
        }


class LFSRSource(PatternSource):
    """Stimulus taken from a maximal-length LFSR.

    Each generate() call starts from the configured seed so repeated calls
    are reproducible.
    """

    def __init__(self, degree: int = 32, seed: int = 0xACE1) -> None:
        self.degree = degree
        self.seed = seed

    def generate(self, input_names: Sequence[str], n_patterns: int) -> Dict[str, int]:
        lfsr = LFSR(self.degree, seed=self.seed)
        words = lfsr.packed_input_words(len(input_names), n_patterns)
        return dict(zip(input_names, words))


class ExhaustiveSource(PatternSource):
    """All ``2**n`` combinations (n_patterns must equal ``2**len(inputs)``).

    Input ``i`` toggles with period ``2**(i+1)`` — the usual binary counter
    ordering.
    """

    def generate(self, input_names: Sequence[str], n_patterns: int) -> Dict[str, int]:
        n = len(input_names)
        if n_patterns != (1 << n):
            raise ValueError(
                f"exhaustive stimulus for {n} inputs needs {1 << n} patterns, "
                f"got {n_patterns}"
            )
        out: Dict[str, int] = {}
        for i, name in enumerate(input_names):
            word = 0
            for p in range(n_patterns):
                if (p >> i) & 1:
                    word |= 1 << p
            out[name] = word
        return out


class ExplicitSource(PatternSource):
    """Caller-provided vectors: ``patterns[p]`` maps input name → 0/1."""

    def __init__(self, patterns: List[Dict[str, int]]) -> None:
        self.patterns = list(patterns)

    def generate(self, input_names: Sequence[str], n_patterns: int) -> Dict[str, int]:
        if n_patterns != len(self.patterns):
            raise ValueError(
                f"{len(self.patterns)} explicit patterns held, {n_patterns} requested"
            )
        matrix = [[pat.get(name, 0) for name in input_names] for pat in self.patterns]
        words = pack_patterns(matrix, len(input_names))
        return dict(zip(input_names, words))
