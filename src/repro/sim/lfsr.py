"""Linear feedback shift register (LFSR) pseudo-random pattern generator.

BIST pattern generators of the era were external-XOR LFSRs built from a
primitive feedback polynomial, giving a maximal-length (2^n - 1) sequence.
This module provides:

* a table of primitive polynomials over GF(2) for degrees 2–32 (classic
  Peterson/Weldon taps as used in the BIST literature);
* :class:`LFSR`, a Fibonacci-configuration register producing per-cycle
  parallel output of its state bits;
* helpers to drive a circuit's primary inputs from the register, matching
  the "LFSR + scan chain" abstraction of pseudo-random BIST.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["PRIMITIVE_TAPS", "primitive_taps", "LFSR"]

#: Primitive polynomial tap positions (1-based exponents, excluding x^0) for
#: each degree.  x^n + x^k + ... + 1 is encoded as (n, k, ...).
PRIMITIVE_TAPS: Dict[int, Tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 1),
    4: (4, 1),
    5: (5, 2),
    6: (6, 1),
    7: (7, 1),
    8: (8, 6, 5, 4),
    9: (9, 4),
    10: (10, 3),
    11: (11, 2),
    12: (12, 7, 4, 3),
    13: (13, 4, 3, 1),
    14: (14, 12, 11, 1),
    15: (15, 1),
    16: (16, 5, 3, 2),
    17: (17, 3),
    18: (18, 7),
    19: (19, 6, 5, 1),
    20: (20, 3),
    21: (21, 2),
    22: (22, 1),
    23: (23, 5),
    24: (24, 4, 3, 1),
    25: (25, 3),
    26: (26, 8, 7, 1),
    27: (27, 8, 7, 1),
    28: (28, 3),
    29: (29, 2),
    30: (30, 16, 15, 1),
    31: (31, 3),
    32: (32, 28, 27, 1),
}


def primitive_taps(degree: int) -> Tuple[int, ...]:
    """Return primitive polynomial taps for ``degree`` (KeyError if absent)."""
    try:
        return PRIMITIVE_TAPS[degree]
    except KeyError:
        raise KeyError(
            f"no primitive polynomial tabulated for degree {degree}"
        ) from None


class LFSR:
    """Fibonacci LFSR over GF(2) with a primitive feedback polynomial.

    Parameters
    ----------
    degree:
        Register length; the sequence period is ``2**degree - 1``.
    seed:
        Initial nonzero state (defaults to 1).
    taps:
        Feedback tap positions; defaults to the tabulated primitive taps.
    """

    def __init__(
        self,
        degree: int,
        seed: int = 1,
        taps: Optional[Tuple[int, ...]] = None,
    ) -> None:
        if degree < 2:
            raise ValueError("LFSR degree must be ≥ 2")
        self.degree = degree
        self.taps = tuple(taps) if taps is not None else primitive_taps(degree)
        if max(self.taps) != degree:
            raise ValueError("highest tap must equal the register degree")
        mask = (1 << degree) - 1
        seed &= mask
        if seed == 0:
            raise ValueError("LFSR seed must be nonzero")
        self._mask = mask
        self.state = seed
        self._tap_mask = 0
        for t in self.taps:
            self._tap_mask |= 1 << (t - 1)

    def step(self) -> int:
        """Advance one clock; return the new state."""
        feedback = (self.state & self._tap_mask).bit_count() & 1
        self.state = ((self.state << 1) | feedback) & self._mask
        return self.state

    def state_bits(self) -> List[int]:
        """Current state as a list of bits, LSB first."""
        return [(self.state >> i) & 1 for i in range(self.degree)]

    def sequence(self, n_cycles: int) -> Iterator[int]:
        """Yield ``n_cycles`` successive states (advancing the register)."""
        for _ in range(n_cycles):
            yield self.state
            self.step()

    def period(self) -> int:
        """Sequence period for a primitive polynomial: ``2**degree - 1``."""
        return (1 << self.degree) - 1

    def packed_input_words(self, n_signals: int, n_patterns: int) -> List[int]:
        """Generate packed per-signal pattern words for ``n_signals`` inputs.

        Signal ``s`` receives state bit ``s mod degree`` at each cycle — the
        standard "parallel taps off the register" wiring.  Returns one packed
        word per signal with pattern ``p`` in bit ``p``; the register is
        advanced ``n_patterns`` cycles.
        """
        words = [0] * n_signals
        for p in range(n_patterns):
            state = self.state
            for s in range(n_signals):
                if (state >> (s % self.degree)) & 1:
                    words[s] |= 1 << p
            self.step()
        return words
